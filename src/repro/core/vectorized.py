"""The vectorized engine backend: batch visit processing over packed columns.

:class:`VectorizedCoreEngine` produces **bit-identical** results to the
reference :class:`~repro.core.engine.CoreEngine` — same stats, same IPC,
same eviction order, same floats — while processing compiled-trace visits
several times faster on the profile config.  It is selected through
``EngineConfig``/``RunSpec``/``REPRO_ENGINE_BACKEND`` via
:mod:`repro.core.backends`; the golden spec-parity hashes pin that cached
results are unchanged.

How the speed is won
--------------------

The reference engine's cost is Python interpreter overhead, not simulation
work: attribute loads, method calls, and per-visit allocation.  Measured on
``db/1c/discontinuity/bypass``, L1I-hit runs between interaction points
average only ~3-6 visits, so a pure NumPy window scan (classify a block of
visits, replay it) loses: every interaction point invalidates the residency
snapshot the scan depends on, and re-scanning at run granularity costs more
than it saves.  What wins instead:

1. **Span interpretation with all state in locals.**  One flat loop
   (:meth:`_fast_span`) processes a half-open visit range with every hot
   structure — cache sets, queue entries, stat counters, the clock — held
   in local variables and written back once at span exit.  Each reference
   operation is replicated inline *in the same order with the same float
   arithmetic*, so equality is by construction, not by tolerance.
2. **NumPy batch decode of the packed columns.**  Per 64K-visit chunk, the
   ``RPCTRC01`` columns are bulk-converted (``lines``/``kinds``/``disc``
   /``offsets`` → lists, data addresses ``>> shift`` → line indices,
   ``ninstr × cpi`` → per-visit exec cycles) instead of being re-read and
   re-computed element-wise per visit; monotone counters (fetches, cache
   lookups, hit counts, retired instructions) are accounted in bulk per
   chunk instead of incremented per visit.  The warm/measure boundary is
   located up front with one ``cumsum``/``searchsorted`` rather than an
   every-visit comparison.
3. **O(1) queue-drain guard.**  :class:`~repro.prefetch.queue.PrefetchQueue`
   maintains a ``waiting`` count, so the once-per-visit "any prefetches to
   issue?" check collapses to pure credit arithmetic (the reference
   backend's single largest waste: a full queue scan that mostly finds
   nothing).
4. **Hit-transparent prefetcher contract.**  Prefetchers that provably do
   nothing on plain L1I hits (``Prefetcher.hit_transparent``) let the loop
   skip the ``on_demand_fetch``/``on_discontinuity``/overhead hooks for
   every non-trigger visit.  For the paper's own prefetcher
   (:class:`~repro.prefetch.discontinuity.DiscontinuityPrefetcher`) the
   trigger path is additionally specialized: candidates are generated and
   offered inline, without building ``PrefetchCandidate`` lists.

When the fast span is *not* safe, the engine degrades to exact reference
behavior (never to approximate fast behavior):

- raw (non-compiled) traces → reference stepping;
- non-hit-transparent prefetchers (``next-line-always``, ``target``,
  ``swpf``, ``fdp``) → reference stepping;
- non-LRU replacement on any cache level → reference stepping;
- an inclusive-L2 back-invalidation hook → reference stepping (another
  core may invalidate lines mid-span);
- multi-core systems drive :meth:`step`, which runs the fast span one
  visit at a time so the CMP system's global cycle interleaving — and
  therefore every shared L2/link access order — is untouched.

Internal-contract note: the span loop reaches into ``SetAssociativeCache``
(``_sets``/``_set_mask``/``_assoc``/``_is_lru``), ``PrefetchQueue``
(``_entries``/``_by_line``/``_recent``/``_config``/``waiting``),
``OffChipLink`` (``_next_free``), ``OutstandingRequestTracker``
(``_entries``/``_capacity``) and ``DiscontinuityTable``
(``_mask``/``_sources``/``_targets``).  The backend parity suite
(``tests/unit/test_backend_parity.py``) sweeps every registered prefetcher
and compares full ``CoreStats``, so any drift between these internals and
the inlined copies fails loudly.
"""

from __future__ import annotations

from typing import List, Optional, cast

import numpy as np

from repro.caches.line import LineState
from repro.core.engine import _MAX_ISSUE_PER_VISIT, CoreEngine
from repro.core.metrics import CoreStats
from repro.prefetch.discontinuity import DiscontinuityPrefetcher
from repro.prefetch.queue import QueueEntry, QueueState

#: visits decoded per NumPy batch; bounds the transient list memory.
_CHUNK = 65536

#: shared provenance of sequential candidates (value-equal to the one the
#: prefetcher modules use; only the value ever matters).
_SEQ_PROVENANCE = ("seq",)


class VectorizedCoreEngine(CoreEngine):
    """Drop-in :class:`CoreEngine` with batch visit processing."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._twin_ok: Optional[bool] = None
        # Cached list of WAITING queue entries in queue order, so the drain
        # pops in O(1) instead of re-scanning past ISSUED filter memory.
        # Sound because the queue is engine-private and, on the fast path,
        # mutated only inside _fast_span (the parity suite pins this).
        self._wlist: Optional[List[QueueEntry]] = None
        if self._compiled is not None:
            self._np_lines = np.frombuffer(self._c_lines, dtype=np.int64)
            self._np_kinds = np.frombuffer(self._c_kinds, dtype=np.int8)
            self._np_ninstr = np.frombuffer(self._c_ninstr, dtype=np.intc)
            self._np_data = np.frombuffer(self._c_data, dtype=np.int64)
            self._np_offsets = np.frombuffer(self._c_offsets, dtype=np.int64)
            self._np_disc = np.frombuffer(self._c_disc, dtype=np.int8)

    # ------------------------------------------------------------------ #
    # Fast-path eligibility
    # ------------------------------------------------------------------ #

    def _twin_ready(self) -> bool:
        """Decide (once, lazily — the system wires ``l2_eviction_hook``
        after construction) whether the inline span loop is exact for this
        configuration."""
        ok = self._twin_ok
        if ok is None:
            ok = (
                self._compiled is not None
                and bool(getattr(self.prefetcher, "hit_transparent", False))
                and self.l2_eviction_hook is None
                and self.l1i._is_lru
                and self.l1d._is_lru
                and self.l2._is_lru
            )
            self._twin_ok = ok
        return ok

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """One visit per call — exact CMP interleaving, fast span body."""
        if not self._twin_ready():
            return super().step()
        i = self._visit_index
        if i >= self._c_count:
            self._finished = True
            self.stats.cycles = self.cycle - self._cycle_mark
            return False
        self._fast_span(i, i + 1)
        if not self._warmed and self.total_instructions >= self._warm_target:
            self._end_warmup()
        return True

    def run(self) -> CoreStats:
        """Run the whole trace through the span interpreter."""
        if not self._twin_ready():
            return super().run()
        n = self._c_count
        i = self._visit_index
        if i < n and not self._warmed:
            # Locate the warm/measure crossing up front: the first visit
            # after which total_instructions reaches the target.
            remaining = self._warm_target - self.total_instructions
            cum = np.cumsum(self._np_ninstr[i:], dtype=np.int64)
            w = i + int(np.searchsorted(cum, remaining, side="left"))
            if w < n:
                self._fast_span(i, w + 1)
                self._end_warmup()
                i = w + 1
        if i < n:
            self._fast_span(i, n)
        self._finished = True
        self.stats.cycles = self.cycle - self._cycle_mark
        return self.stats

    # ------------------------------------------------------------------ #
    # The span interpreter
    # ------------------------------------------------------------------ #

    def _fast_span(self, i0: int, i1: int) -> None:
        """Process visits ``[i0, i1)`` — reference semantics, local state.

        Every block below mirrors a specific reference path (noted in the
        comments); mutation order and float evaluation order are identical.
        The caller owns warm-boundary handling: the span itself never
        checks the warm target.
        """
        # --- engine scalars (CoreEngine.__init__ hoists) ---
        stats = self.stats
        pf = stats.prefetch
        now = self.cycle
        credit = self._slot_credit
        last = self._last_slot_cycle
        prev = self._prev_line
        total_instr = self.total_instructions
        rate = self._slot_rate
        cpi = self._exec_cpi
        shift = self._line_shift
        fse = self._fetch_stall_exposed
        l2lat = self._l2_latency
        memlat = self._memory_latency
        dl2exp = self._data_l2_exposed
        dmemexp = self._data_memory_exposed
        free_kind = self._free_kind
        uhf = self._useless_hint_filter
        pol = self._l2_policy
        pol_promote = pol.promote_on_prefetch_hit
        pol_fills = pol.install_prefetch_fills
        pol_evict_install = pol.install_used_on_eviction
        LS = LineState
        QE = QueueEntry
        W = QueueState.WAITING
        ISS = QueueState.ISSUED
        INV = QueueState.INVALID

        # --- caches: sets + geometry + stat counters ---
        isets = self.l1i._sets
        imask = self.l1i._set_mask
        iassoc = self.l1i._assoc
        dsets = self.l1d._sets
        dmask = self.l1d._set_mask
        dassoc = self.l1d._assoc
        lsets = self.l2._sets
        lmask = self.l2._set_mask
        lassoc = self.l2._assoc
        ist = self.l1i.stats
        dst = self.l1d.stats
        lst = self.l2.stats
        i_lk = ist.lookups
        i_ht = ist.hits
        i_ms = ist.misses
        i_in = ist.installs
        i_ev = ist.evictions
        d_lk = dst.lookups
        d_ht = dst.hits
        d_ms = dst.misses
        d_in = dst.installs
        d_ev = dst.evictions
        l_lk = lst.lookups
        l_ht = lst.hits
        l_ms = lst.misses
        l_in = lst.installs
        l_ev = lst.evictions

        # --- queue ---
        queue = self.queue
        qstats = queue.stats
        qentries = queue._entries
        qby = queue._by_line
        qcfg = queue._config
        qcap = qcfg.capacity
        qlifo = qcfg.lifo
        qfilter = qcfg.filtering
        rentries = queue._recent._entries
        rcap = queue._recent._capacity
        # WAITING entries in queue order; truthiness replaces the reference
        # queue scan, the tail/head replaces pop_ready's search.
        wlist = self._wlist
        if wlist is None:
            wlist = [en for en in qentries if en.state == W]
        q_off = qstats.offered
        q_acc = qstats.accepted
        q_drr = qstats.dropped_recent_demand
        q_ddi = qstats.dropped_dup_issued
        q_ddv = qstats.dropped_dup_invalid
        q_hoist = qstats.hoisted
        q_inv = qstats.invalidated_by_demand
        q_ovf = qstats.overflow_drops
        q_pop = qstats.popped

        # --- link + MSHR ---
        link = self.link
        lkstats = link.stats
        occ = link.occupancy_cycles
        link_next = link._next_free
        link_req = lkstats.requests
        link_busy = lkstats.busy_cycles
        link_qd = lkstats.queue_delay_cycles
        mshr = self._mshr._entries
        mshr_cap = self._mshr._capacity
        INF = float("inf")
        # Oldest outstanding fill arrival: while it is in the future the
        # reference MSHR prune is a provable no-op and can be skipped.
        mshr_min = min(mshr.values()) if mshr else INF

        # --- engine stats ---
        instr = stats.instructions
        ec = stats.exec_cycles
        fstall = stats.fetch_stall_cycles
        dstall = stats.data_stall_cycles
        fetches = stats.l1i_fetches
        imiss = stats.l1i_misses
        l2ia = stats.l2i_demand_accesses
        l2im = stats.l2i_demand_misses
        dacc = stats.data_accesses
        dmiss_e = stats.l1d_misses
        l2da = stats.l2d_accesses
        l2dm = stats.l2d_misses
        pgen = pf.generated
        pprobe = pf.probe_found_present
        piss = pf.issued
        pl2 = pf.issued_from_l2
        pmem = pf.issued_from_memory
        puseful = pf.useful
        plate = pf.useful_late
        pumem = pf.useful_from_memory
        puseless = pf.useless_evicted
        pduh = pf.dropped_useless_hint
        pprom = pf.promoted_to_l2
        rec_l1i = stats.l1i_breakdown.record
        rec_l2i = stats.l2i_breakdown.record
        pf_demand = self._pf_on_demand_fetch
        pf_disc = self._pf_on_discontinuity
        pf_credit = self._pf_credit

        # --- prefetcher specialization: the paper's own prefetcher gets
        # its trigger path (candidate generation + probe) inlined too ---
        prefetcher = self.prefetcher
        disc_fast = type(prefetcher) is DiscontinuityPrefetcher
        if disc_fast:
            dpf = cast(DiscontinuityPrefetcher, prefetcher)
            table = dpf.table
            tmask = table._mask
            tsrc = table._sources
            ttgt = table._targets
            tstats = table.stats
            t_probe_hits = tstats.probe_hits
            ahead = dpf.prefetch_ahead
            probe_window = ahead if dpf.probe_ahead else 0

        def offer_line(cl, prov):
            # PrefetchQueue.offer for one candidate.
            nonlocal q_off, q_acc, q_drr, q_ddi, q_ddv, q_hoist, q_ovf
            q_off += 1
            if qfilter:
                if cl in rentries:
                    q_drr += 1
                    return
                dup = qby.get(cl)
                if dup is not None:
                    dup_state = dup.state
                    if dup_state == W:
                        qentries.remove(dup)
                        qentries.append(dup)
                        wlist.remove(dup)
                        wlist.append(dup)
                        q_hoist += 1
                    elif dup_state == ISS:
                        q_ddi += 1
                    else:
                        q_ddv += 1
                    return
            en = QE(cl, prov)
            if len(qentries) >= qcap:
                victim = qentries.pop(0)
                if qby.get(victim.line) is victim:
                    del qby[victim.line]
                if victim.state == W:
                    # The overall-oldest entry, if waiting, is the oldest
                    # waiting entry.
                    del wlist[0]
                q_ovf += 1
            qentries.append(en)
            qby[cl] = en
            q_acc += 1
            wlist.append(en)

        def install_l1i(line_, state_, now_):
            # CoreEngine._install_l1i + SetAssociativeCache.install (LRU).
            nonlocal i_in, i_ev, puseless, pprom, l_in, l_ev
            i_in += 1
            iset_ = isets[line_ & imask]
            if line_ in iset_:
                iset_[line_] = state_
                iset_.move_to_end(line_)
                return
            if len(iset_) < iassoc:
                iset_[line_] = state_
                return
            i_ev += 1
            vline, vst = iset_.popitem(last=False)
            iset_[line_] = state_
            if vst.prefetched:
                # Evicted without ever being demand-used (§7 accounting).
                puseless += 1
                if uhf:
                    l2c = lsets[vline & lmask].get(vline)
                    if l2c is not None:
                        l2c.useless_hint = True
                return
            if vst.bypass_pending and vst.used and pol_evict_install:
                # §7: proven-useful bypass line installed into the L2 now.
                lset_ = lsets[vline & lmask]
                if vline not in lset_:
                    l_in += 1
                    if len(lset_) >= lassoc:
                        l_ev += 1
                        lset_.popitem(last=False)
                    lset_[vline] = LS(used=True, arrival=now_)
                    pprom += 1

        def data_miss(dline_, dset_, now_):
            # CoreEngine._data_miss, returning the exposed stall.
            nonlocal dmiss_e, l2da, l2dm, l_lk, l_ht, l_ms, l_in, l_ev
            nonlocal d_in, d_ev, link_next, link_req, link_busy, link_qd, dstall
            dmiss_e += 1
            l2da += 1
            l_lk += 1
            lset_ = lsets[dline_ & lmask]
            ls_ = lset_.get(dline_)
            if ls_ is not None:
                l_ht += 1
                lset_.move_to_end(dline_)
                ls_.used = True
                exposed = dl2exp
            else:
                l_ms += 1
                l2dm += 1
                start = link_next if link_next > now_ else now_
                link_next = start + occ
                link_req += 1
                link_busy += occ
                link_qd += start - now_
                raw = (start - now_) + memlat
                exposed = raw * dmemexp
                l_in += 1
                if len(lset_) >= lassoc:
                    l_ev += 1
                    lset_.popitem(last=False)
                lset_[dline_] = LS(used=True, arrival=now_ + raw)
            d_in += 1
            if len(dset_) >= dassoc:
                d_ev += 1
                dset_.popitem(last=False)
            dset_[dline_] = LS(used=True)
            dstall += exposed
            return exposed

        def drain(cr, now_):
            # CoreEngine._issue_prefetches past the slot computation, with
            # pop_ready/probe/MSHR/_issue_one inlined.  Caller guarantees
            # cr >= 1.0, wlist non-empty and _last_slot_cycle == now_.
            nonlocal mshr_min, pprobe, piss, pl2, pmem, pduh, q_pop
            nonlocal link_next, link_req, link_busy, link_qd, l_in, l_ev
            slots = int(cr)
            if slots > _MAX_ISSUE_PER_VISIT:
                slots = _MAX_ISSUE_PER_VISIT
                cr = float(slots)
            ncredit = cr - slots
            while slots:
                slots -= 1
                if not wlist:
                    break
                # pop_ready: newest waiting first under LIFO.
                entry = wlist.pop() if qlifo else wlist.pop(0)
                entry.state = ISS
                q_pop += 1
                eline = entry.line
                if isets[eline & imask].get(eline) is not None:
                    pprobe += 1
                    continue
                if mshr_min <= now_:
                    done = [m for m, arr in mshr.items() if arr <= now_]
                    for m in done:
                        del mshr[m]
                    mshr_min = min(mshr.values()) if mshr else INF
                if len(mshr) >= mshr_cap:
                    # MSHR file full: put the entry back and stop for now.
                    # It was the newest (LIFO) / oldest (FIFO) waiting
                    # entry, so its order slot is the one it left.
                    entry.state = W
                    if qlifo:
                        wlist.append(entry)
                    else:
                        wlist.insert(0, entry)
                    break
                lset_ = lsets[eline & lmask]
                l2s = lset_.get(eline)
                if l2s is not None:
                    if uhf and l2s.useless_hint:
                        pduh += 1
                        continue
                    arrival = now_ + l2lat
                    if l2s.arrival > arrival:
                        arrival = l2s.arrival
                    if pol_promote:
                        lset_.move_to_end(eline)
                    piss += 1
                    pl2 += 1
                    install_l1i(
                        eline,
                        LS(prefetched=True, arrival=arrival, provenance=entry.provenance),
                        now_,
                    )
                else:
                    start = link_next if link_next > now_ else now_
                    link_next = start + occ
                    link_req += 1
                    link_busy += occ
                    link_qd += start - now_
                    arrival = start + memlat
                    mshr[eline] = arrival
                    if arrival < mshr_min:
                        mshr_min = arrival
                    piss += 1
                    pmem += 1
                    if pol_fills:
                        l_in += 1
                        if len(lset_) >= lassoc:
                            l_ev += 1
                            lset_.popitem(last=False)
                        lset_[eline] = LS(prefetched=True, arrival=arrival)
                    install_l1i(
                        eline,
                        LS(
                            prefetched=True,
                            arrival=arrival,
                            bypass_pending=not pol_fills,
                            from_memory=True,
                            provenance=entry.provenance,
                        ),
                        now_,
                    )
            return ncredit

        npn = self._np_ninstr
        npdata = self._np_data
        a = i0
        while a < i1:
            b = a + _CHUNK
            if b > i1:
                b = i1
            nv = b - a
            # Batch-decode the chunk's packed columns.
            lines_c = self._np_lines[a:b].tolist()
            kinds_c = self._np_kinds[a:b].tolist()
            disc_c = self._np_disc[a:b].tolist()
            offs_c = self._np_offsets[a : b + 1].tolist()
            dbase = offs_c[0]
            ndata = offs_c[-1] - dbase
            if ndata:
                dlines_c = (npdata[dbase : offs_c[-1]] >> shift).tolist()
            else:
                dlines_c = []
            # int32 → float64 is exact, so ninstr * cpi matches the
            # reference's per-visit Python int * float bit-for-bit.
            execs_c = (npn[a:b].astype(np.float64) * cpi).tolist()
            chunk_instr = int(npn[a:b].sum(dtype=np.int64))
            # Monotone counters are accounted in bulk below the loop; only
            # the rare-event counts (misses) stay per-event, and the hit
            # counts are derived from them.
            i_ms_mark = i_ms
            d_ms_mark = d_ms

            for j, line in enumerate(lines_c):

                # (1) prefetch issue opportunities (engine step 1).
                t = credit + (now - last) * rate
                if t < 1.0:
                    credit = t
                    last = now
                else:
                    last = now
                    if wlist:
                        # _issue_prefetches(now) recomputes the same credit.
                        credit = drain(t, now)
                    elif t < 9.0:
                        # Empty queue: the drain reduces to its credit
                        # arithmetic (slots = int(t) <= 8, no clamping).
                        credit = t - int(t)
                    else:
                        # Clamped: credit = float(8) - 8 exactly.
                        credit = 0.0

                # (2) demand fetch (L1I lookup, LRU).
                iset = isets[line & imask]
                st = iset.get(line)
                if st is not None and not st.prefetched:
                    # Transparent hit: the prefetcher hooks are inert by
                    # the hit_transparent contract, stall is zero, and only
                    # the recent-demand filter needs updating.
                    iset.move_to_end(line)
                    st.used = True
                    prev = line
                    if qfilter:
                        if line in rentries:
                            rentries.move_to_end(line)
                        else:
                            rentries[line] = None
                            if len(rentries) > rcap:
                                rentries.popitem(last=False)
                        if wlist:
                            dup = qby.get(line)
                            if dup is not None and dup.state == W:
                                dup.state = INV
                                q_inv += 1
                                wlist.remove(dup)
                    # (5) data accesses.
                    s0 = offs_c[j]
                    s1 = offs_c[j + 1]
                    while s0 < s1:
                        dline = dlines_c[s0 - dbase]
                        s0 += 1
                        dset = dsets[dline & dmask]
                        ds = dset.get(dline)
                        if ds is not None:
                            dset.move_to_end(dline)
                        else:
                            d_ms += 1
                            now += data_miss(dline, dset, now)
                    # (6) execution.
                    e = execs_c[j]
                    ec += e
                    now += e
                    continue

                # Trigger visit: miss or first use of a prefetched line.
                kind = kinds_c[j]
                stall = 0.0
                if st is not None:
                    iset.move_to_end(line)
                    was_miss = False
                    # First use of a prefetched line (tagged trigger).
                    st.prefetched = False
                    puseful += 1
                    if st.from_memory:
                        pumem += 1
                    if st.provenance is not None:
                        pf_credit(st.provenance)
                    if st.arrival > now:
                        # Late prefetch: stall for the residual fill latency.
                        stall = st.arrival - now
                        plate += 1
                    st.used = True
                else:
                    i_ms += 1
                    was_miss = True
                    imiss += 1
                    rec_l1i(kind)
                    # _demand_fill inlined (LRU L2 lookup + link + installs).
                    l2ia += 1
                    l_lk += 1
                    lset = lsets[line & lmask]
                    ls = lset.get(line)
                    if ls is not None:
                        l_ht += 1
                        lset.move_to_end(line)
                        ls.used = True
                        ls.prefetched = False
                        ls.useless_hint = False
                        stall = l2lat
                        if ls.arrival > now + stall:
                            stall = ls.arrival - now
                    else:
                        l_ms += 1
                        l2im += 1
                        rec_l2i(kind)
                        start = link_next if link_next > now else now
                        link_next = start + occ
                        link_req += 1
                        link_busy += occ
                        link_qd += start - now
                        stall = (start - now) + memlat
                        l_in += 1
                        if len(lset) >= lassoc:
                            l_ev += 1
                            lset.popitem(last=False)
                        lset[line] = LS(used=True, arrival=now + stall)
                    install_l1i(line, LS(used=True, arrival=now + stall), now)
                    if free_kind[kind]:
                        stall = 0.0

                # (3) discontinuity observation — a no-op for transparent
                # prefetchers unless the transition missed.
                if was_miss and disc_c[j]:
                    pf_disc(prev, line, True)
                prev = line

                # (4) prefetch generation + filtering.
                if qfilter:
                    if line in rentries:
                        rentries.move_to_end(line)
                    else:
                        rentries[line] = None
                        if len(rentries) > rcap:
                            rentries.popitem(last=False)
                    dup = qby.get(line)
                    if dup is not None and dup.state == W:
                        dup.state = INV
                        q_inv += 1
                        wlist.remove(dup)
                if disc_fast:
                    # DiscontinuityPrefetcher.on_demand_fetch inlined: the
                    # next-N-line candidates, then the probe-ahead window,
                    # offered in the same order without list allocation.
                    gen_n = ahead
                    for depth in range(1, ahead + 1):
                        offer_line(line + depth, _SEQ_PROVENANCE)
                    for off in range(probe_window + 1):
                        pl = line + off
                        ti = pl & tmask
                        if tsrc[ti] == pl:
                            t_probe_hits += 1
                            tgt = ttgt[ti]
                            prov = ("disc", ti, pl)
                            rem = ahead - off
                            gen_n += rem + 1
                            for extra in range(rem + 1):
                                cl = tgt + extra
                                if cl != line:
                                    offer_line(cl, prov)
                    pgen += gen_n
                else:
                    candidates = pf_demand(line, was_miss, not was_miss, kind)
                    if candidates:
                        pgen += len(candidates)
                        for c in candidates:
                            cl = c.line
                            if cl != line:
                                offer_line(cl, c.provenance)
                if stall > 0.0:
                    # Only the exposed fraction reaches the clock; the
                    # stall window grants tag slots explicitly.
                    stall *= fse
                    fstall += stall
                    credit = credit + stall * rate
                    if credit >= 1.0:
                        # _issue_prefetches sees zero elapsed time here.
                        if wlist:
                            credit = drain(credit, now)
                        elif credit < 9.0:
                            credit = credit - int(credit)
                        else:
                            credit = 0.0
                    now += stall
                    last = now

                # (5) data accesses.
                s0 = offs_c[j]
                s1 = offs_c[j + 1]
                while s0 < s1:
                    dline = dlines_c[s0 - dbase]
                    s0 += 1
                    dset = dsets[dline & dmask]
                    ds = dset.get(dline)
                    if ds is not None:
                        dset.move_to_end(dline)
                    else:
                        d_ms += 1
                        now += data_miss(dline, dset, now)

                # (6) execution.
                e = execs_c[j]
                ec += e
                now += e

            # Bulk accounting: one L1I fetch+lookup per visit, one L1D
            # lookup per data access, hits = accesses - misses.
            fetches += nv
            i_lk += nv
            i_ht += nv - (i_ms - i_ms_mark)
            dacc += ndata
            d_lk += ndata
            d_ht += ndata - (d_ms - d_ms_mark)
            instr += chunk_instr
            total_instr += chunk_instr
            a = b

        # --- write the locals back ---
        self.cycle = now
        self._slot_credit = credit
        self._last_slot_cycle = last
        self._prev_line = prev
        self.total_instructions = total_instr
        self._visit_index = i1
        stats.instructions = instr
        stats.exec_cycles = ec
        stats.fetch_stall_cycles = fstall
        stats.data_stall_cycles = dstall
        stats.l1i_fetches = fetches
        stats.l1i_misses = imiss
        stats.l2i_demand_accesses = l2ia
        stats.l2i_demand_misses = l2im
        stats.data_accesses = dacc
        stats.l1d_misses = dmiss_e
        stats.l2d_accesses = l2da
        stats.l2d_misses = l2dm
        pf.generated = pgen
        pf.probe_found_present = pprobe
        pf.issued = piss
        pf.issued_from_l2 = pl2
        pf.issued_from_memory = pmem
        pf.useful = puseful
        pf.useful_late = plate
        pf.useful_from_memory = pumem
        pf.useless_evicted = puseless
        pf.dropped_useless_hint = pduh
        pf.promoted_to_l2 = pprom
        ist.lookups = i_lk
        ist.hits = i_ht
        ist.misses = i_ms
        ist.installs = i_in
        ist.evictions = i_ev
        dst.lookups = d_lk
        dst.hits = d_ht
        dst.misses = d_ms
        dst.installs = d_in
        dst.evictions = d_ev
        lst.lookups = l_lk
        lst.hits = l_ht
        lst.misses = l_ms
        lst.installs = l_in
        lst.evictions = l_ev
        queue.waiting = len(wlist)
        self._wlist = wlist
        qstats.offered = q_off
        qstats.accepted = q_acc
        qstats.dropped_recent_demand = q_drr
        qstats.dropped_dup_issued = q_ddi
        qstats.dropped_dup_invalid = q_ddv
        qstats.hoisted = q_hoist
        qstats.invalidated_by_demand = q_inv
        qstats.overflow_drops = q_ovf
        qstats.popped = q_pop
        link._next_free = link_next
        lkstats.requests = link_req
        lkstats.busy_cycles = link_busy
        lkstats.queue_delay_cycles = link_qd
        if disc_fast:
            tstats.probe_hits = t_probe_hits
