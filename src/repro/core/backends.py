"""Engine backend selection.

Three interchangeable engine implementations exist:

``reference``
    :class:`~repro.core.engine.CoreEngine` — the plain per-visit
    interpreter.  Always available; its source is the readable
    specification of the simulation semantics.
``vectorized``
    :class:`~repro.core.vectorized.VectorizedCoreEngine` — batch visit
    processing over the compiled trace's packed columns (requires NumPy).
    Bit-identical results, measured 2-3× faster on the single-core profile
    configuration (see ``docs/performance.md`` for why not more).
``jit``
    :class:`~repro.core.jitted.JittedCoreEngine` — the per-visit scalar
    semantics compiled to native code (requires a C compiler on PATH;
    the kernel is built once and cached).  Bit-identical results, and the
    only backend whose *multi-core* interleave loop also runs compiled:
    CMP runs get faster instead of degrading to span-of-1 stepping.

Selection order: an explicit backend name (``EngineConfig``/``RunSpec``/
CLI ``--backend``) wins; ``"auto"`` defers to the ``REPRO_ENGINE_BACKEND``
environment variable; unset means ``reference`` on single-core systems.
Multi-core systems resolving ``auto`` prefer ``jit`` whenever its kernel
is buildable — the environment can still pin ``reference`` or ``jit``
explicitly, but ``vectorized`` is never auto-selected there: shared-L2
lockstep forces it into span-of-1 stepping, which measures ~0.9× the
reference interpreter (see ``docs/performance.md``), so deferring to it
would be a silent pessimization.  Requesting ``vectorized`` without NumPy
(or ``jit`` without a C compiler) falls back to ``reference`` with a
logged warning — results are identical either way, only slower.

The backend never affects simulated results, so it is deliberately *not*
part of a run's cache key (``RunSpec.canonical_dict``) — cached results
are shared across backends.
"""

from __future__ import annotations

import logging
import os
from typing import Optional, Protocol

from repro.core.engine import CoreEngine
from repro.envvars import REPRO_ENGINE_BACKEND
from repro.core.metrics import CoreStats

logger = logging.getLogger(__name__)

#: environment variable consulted when the backend is ``"auto"``.
ENGINE_BACKEND_ENV = REPRO_ENGINE_BACKEND

#: the selectable backends, in preference-documentation order.
BACKEND_NAMES = ("reference", "vectorized", "jit")

#: sentinel meaning "defer to the environment, default to reference".
AUTO_BACKEND = "auto"


class EngineBackend(Protocol):
    """The narrow surface the system/executor drive an engine through.

    Both backends satisfy this structurally (``VectorizedCoreEngine``
    subclasses ``CoreEngine``); new backends only need these members.
    """

    stats: CoreStats
    cycle: float
    total_instructions: int
    l2_eviction_hook: Optional[object]

    @property
    def finished(self) -> bool: ...

    def step(self) -> bool: ...

    def run(self) -> CoreStats: ...


def resolve_backend(name: Optional[str] = None, n_cores: int = 1) -> str:
    """Resolve an explicit/auto backend request to a concrete name.

    Resolution table (explicit names always win; *n_cores* only matters
    for ``auto``/None/empty requests; "jit buildable" is whether the jit
    kernel can be compiled/loaded in this environment)::

        request       n_cores  REPRO_ENGINE_BACKEND  ->  backend
        ------------  -------  --------------------      ----------
        reference     any      any                       reference
        vectorized    any      any                       vectorized
        jit           any      any                       jit
        auto/None     1        unset                     reference
        auto/None     1        reference                 reference
        auto/None     1        vectorized                vectorized
        auto/None     1        jit                       jit
        auto/None     >1       reference                 reference
        auto/None     >1       jit                       jit
        auto/None     >1       unset/vectorized          jit if buildable
                                                         else reference

    Multi-core ``auto`` prefers ``jit`` because only its interleave loop
    runs compiled; ``vectorized`` is never auto-selected there (span-of-1
    stepping measures ~0.9x reference — see ``docs/performance.md``).
    """
    if name is None or name == "" or name == AUTO_BACKEND:
        env = os.environ.get(ENGINE_BACKEND_ENV, "")
        if n_cores > 1:
            if env in ("reference", "jit"):
                name = env
            else:
                # Unset or vectorized: prefer the jit kernel (the one
                # backend whose multi-core stepping is compiled); without
                # a C toolchain, reference remains the safe choice.
                name = "jit" if _jit_available() else "reference"
        else:
            name = env or "reference"
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown engine backend {name!r}; available: "
            f"{', '.join(BACKEND_NAMES)} (or {AUTO_BACKEND!r})"
        )
    return name


def _jit_available() -> bool:
    """True when the jit backend's compiled kernel is usable here."""
    try:
        from repro.core import jitted
    except ImportError:
        return False
    return jitted.jit_available()


_fallback_warned = False


def _vectorized_engine_cls():
    """Import the vectorized backend, or None when NumPy is missing."""
    global _fallback_warned
    try:
        from repro.core.vectorized import VectorizedCoreEngine
    except ImportError:
        if not _fallback_warned:
            logger.warning(
                "vectorized engine backend unavailable (NumPy not importable); "
                "falling back to the reference backend"
            )
            _fallback_warned = True
        return None
    return VectorizedCoreEngine


_jit_fallback_warned = False


def _jitted_engine_cls():
    """Import the jit backend, or None when its kernel can't be built."""
    global _jit_fallback_warned
    try:
        from repro.core.jitted import JittedCoreEngine, jit_available
    except ImportError:
        jit_ok = False
    else:
        jit_ok = jit_available()
        if jit_ok:
            return JittedCoreEngine
    if not _jit_fallback_warned:
        logger.warning(
            "jit engine backend unavailable (no C compiler or kernel build "
            "failed); falling back to the reference backend"
        )
        _jit_fallback_warned = True
    return None


def create_engine(
    backend, config, trace, line_size, l1i, l1d, l2, link, prefetcher, queue, timing,
    n_cores: int = 1,
):
    """Construct the requested engine backend over the given components.

    *backend* may be a concrete name, ``"auto"``, or None (same as auto);
    *n_cores* is the size of the system this engine joins — multi-core
    ``auto`` prefers ``jit``, falling back to ``reference``.
    """
    backend = resolve_backend(backend, n_cores=n_cores)
    engine_cls = None
    if backend == "vectorized":
        engine_cls = _vectorized_engine_cls()
    elif backend == "jit":
        engine_cls = _jitted_engine_cls()
    if engine_cls is not None:
        return engine_cls(
            config, trace, line_size, l1i, l1d, l2, link, prefetcher, queue, timing
        )
    return CoreEngine(config, trace, line_size, l1i, l1d, l2, link, prefetcher, queue, timing)
