"""Engine backend selection.

Two interchangeable engine implementations exist:

``reference``
    :class:`~repro.core.engine.CoreEngine` — the plain per-visit
    interpreter.  Always available; its source is the readable
    specification of the simulation semantics.
``vectorized``
    :class:`~repro.core.vectorized.VectorizedCoreEngine` — batch visit
    processing over the compiled trace's packed columns (requires NumPy).
    Bit-identical results, measured 2-3× faster on the single-core profile
    configuration (see ``docs/performance.md`` for why not more).

Selection order: an explicit backend name (``EngineConfig``/``RunSpec``/
CLI ``--backend``) wins; ``"auto"`` defers to the ``REPRO_ENGINE_BACKEND``
environment variable; unset means ``reference``.  Multi-core systems
resolve ``auto`` to ``reference`` even when the environment selects
``vectorized``: shared-L2 lockstep forces the vectorized engine into
span-of-1 stepping, which measures ~0.9× the reference interpreter (see
``docs/performance.md``), so deferring to it there would be a silent
pessimization.  Requesting ``vectorized`` without NumPy installed falls
back to ``reference`` with a logged warning — results are identical
either way, only slower.

The backend never affects simulated results, so it is deliberately *not*
part of a run's cache key (``RunSpec.canonical_dict``) — cached results
are shared across backends.
"""

from __future__ import annotations

import logging
import os
from typing import Optional, Protocol

from repro.core.engine import CoreEngine
from repro.envvars import REPRO_ENGINE_BACKEND
from repro.core.metrics import CoreStats

logger = logging.getLogger(__name__)

#: environment variable consulted when the backend is ``"auto"``.
ENGINE_BACKEND_ENV = REPRO_ENGINE_BACKEND

#: the selectable backends, in preference-documentation order.
BACKEND_NAMES = ("reference", "vectorized")

#: sentinel meaning "defer to the environment, default to reference".
AUTO_BACKEND = "auto"


class EngineBackend(Protocol):
    """The narrow surface the system/executor drive an engine through.

    Both backends satisfy this structurally (``VectorizedCoreEngine``
    subclasses ``CoreEngine``); new backends only need these members.
    """

    stats: CoreStats
    cycle: float
    total_instructions: int
    l2_eviction_hook: Optional[object]

    @property
    def finished(self) -> bool: ...

    def step(self) -> bool: ...

    def run(self) -> CoreStats: ...


def resolve_backend(name: Optional[str] = None, n_cores: int = 1) -> str:
    """Resolve an explicit/auto backend request to a concrete name.

    Resolution table (explicit names always win; *n_cores* only matters
    for ``auto``/None/empty requests)::

        request       n_cores  REPRO_ENGINE_BACKEND  ->  backend
        ------------  -------  --------------------      ----------
        reference     any      any                       reference
        vectorized    any      any                       vectorized
        auto/None     1        unset                     reference
        auto/None     1        reference                 reference
        auto/None     1        vectorized                vectorized
        auto/None     >1       any                       reference
    """
    if name is None or name == "" or name == AUTO_BACKEND:
        if n_cores > 1:
            # Shared-L2 lockstep degrades the vectorized engine to
            # span-of-1 stepping (~0.9x reference); never auto-select it.
            return "reference"
        name = os.environ.get(ENGINE_BACKEND_ENV, "") or "reference"
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown engine backend {name!r}; available: "
            f"{', '.join(BACKEND_NAMES)} (or {AUTO_BACKEND!r})"
        )
    return name


_fallback_warned = False


def _vectorized_engine_cls():
    """Import the vectorized backend, or None when NumPy is missing."""
    global _fallback_warned
    try:
        from repro.core.vectorized import VectorizedCoreEngine
    except ImportError:
        if not _fallback_warned:
            logger.warning(
                "vectorized engine backend unavailable (NumPy not importable); "
                "falling back to the reference backend"
            )
            _fallback_warned = True
        return None
    return VectorizedCoreEngine


def create_engine(
    backend, config, trace, line_size, l1i, l1d, l2, link, prefetcher, queue, timing,
    n_cores: int = 1,
):
    """Construct the requested engine backend over the given components.

    *backend* may be a concrete name, ``"auto"``, or None (same as auto);
    *n_cores* is the size of the system this engine joins — ``auto``
    resolves to ``reference`` when it is more than one.
    """
    backend = resolve_backend(backend, n_cores=n_cores)
    if backend == "vectorized":
        engine_cls = _vectorized_engine_cls()
        if engine_cls is not None:
            return engine_cls(
                config, trace, line_size, l1i, l1d, l2, link, prefetcher, queue, timing
            )
    return CoreEngine(config, trace, line_size, l1i, l1d, l2, link, prefetcher, queue, timing)
