"""Per-core front-end engine, L2 install policies and metrics."""

from repro.core.engine import CoreEngine, EngineConfig
from repro.core.l2policy import (
    BYPASS_INSTALL,
    NORMAL_INSTALL,
    L2InstallPolicy,
    get_policy,
)
from repro.core.metrics import CoreStats, PrefetchStats

__all__ = [
    "CoreEngine",
    "EngineConfig",
    "L2InstallPolicy",
    "NORMAL_INSTALL",
    "BYPASS_INSTALL",
    "get_policy",
    "CoreStats",
    "PrefetchStats",
]
