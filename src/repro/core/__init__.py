"""Per-core front-end engine, backends, L2 install policies and metrics."""

from repro.core.backends import (
    AUTO_BACKEND,
    BACKEND_NAMES,
    ENGINE_BACKEND_ENV,
    EngineBackend,
    create_engine,
    resolve_backend,
)
from repro.core.engine import CoreEngine, EngineConfig
from repro.core.l2policy import (
    BYPASS_INSTALL,
    NORMAL_INSTALL,
    L2InstallPolicy,
    get_policy,
)
from repro.core.metrics import CoreStats, PrefetchStats

__all__ = [
    "AUTO_BACKEND",
    "BACKEND_NAMES",
    "ENGINE_BACKEND_ENV",
    "EngineBackend",
    "create_engine",
    "resolve_backend",
    "CoreEngine",
    "EngineConfig",
    "L2InstallPolicy",
    "NORMAL_INSTALL",
    "BYPASS_INSTALL",
    "get_policy",
    "CoreStats",
    "PrefetchStats",
]
