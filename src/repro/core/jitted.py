"""The jit engine backend: compiled scalar-exact kernels via the C toolchain.

:class:`JittedCoreEngine` executes the reference
:class:`~repro.core.engine.CoreEngine` per-visit semantics inside one
compiled kernel and produces **bit-identical** results — same stats, same
floats, same eviction order.  Unlike the vectorized backend it also owns
the *multi-core* interleave loop: :meth:`JittedCoreEngine.run_multicore`
runs the whole smallest-clock-first core interleave of
:meth:`repro.cmp.system.System.run` inside the kernel, so ``n_cores > 1``
is batch-stepped instead of span-of-1 (the vectorized backend's ~0.9x
multi-core regression becomes a multiple-x speedup).

How it is compiled
------------------

The kernel is plain C, embedded below as a source string
(:func:`kernel_source`), compiled once per source hash with the system C
compiler (``cc -O2 -fPIC -shared -ffp-contract=off``) into a shared object
cached under ``REPRO_JIT_CACHE_DIR`` (default ``.repro-cache/jit``), and
loaded through :mod:`ctypes`.  This needs no third-party package: numba
(the ``[fast]`` extra's declared JIT escape hatch) generates the same kind
of machine loop, but a toolchain-compiled kernel is available wherever a C
compiler is — environments with neither fall back to the reference
backend with one logged warning (:func:`jit_available`).

Why the results are exactly equal
---------------------------------

CPython floats are IEEE-754 doubles; the kernel performs the *same
operations in the same order* on C ``double``.  ``-ffp-contract=off``
forbids fused multiply-add contraction and no fast-math flags are used,
so every intermediate rounds exactly like the interpreter's.  Integer
state (line indices, counters) is ``long long``; ``int(credit)`` becomes
the equally-truncating C cast.  Each reference structure is replicated
with explicit arrays:

- cache sets become per-set way arrays ordered LRU → MRU (an
  ``OrderedDict.move_to_end`` is a remove + append, ``popitem(last=False)``
  removes index 0);
- the prefetch queue/recent-demand filter/MSHR become capacity-sized flat
  arrays with the reference's exact scan, hoist and overflow behavior;
- the discontinuity table becomes three flat arrays (``None`` sources
  encoded as ``-1``).

Eligibility mirrors the vectorized backend's: a compiled trace, all-LRU
caches, no inclusive-L2 back-invalidation hook, and a prefetcher whose
semantics the kernel replicates (the ``none``/sequential/lookahead/
discontinuity families).  Anything else degrades to exact reference
stepping via ``super()`` — never to approximate fast behavior — so every
registered prefetcher passes the backend parity suite by construction.

Internal-contract note: once an engine binds its state into the kernel
(first ``step()``/``run()`` on an eligible config), the C state is
authoritative for cache/queue/MSHR/table *contents*; Python-side
containers are stale from then on.  Scalars and every stats object are
synced back after each kernel call, so ``--verify`` lockstep, the CMP
interleave driven from Python, and all result aggregation see exact
values.  Engines of one system share one :class:`_JitSystem` (the C
images of the shared L2 and off-chip link), keyed by link identity.
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import shutil
import subprocess
import weakref
from pathlib import Path
from typing import List, Optional

from repro.caches.cache import SetAssociativeCache
from repro.core.engine import CoreEngine
from repro.core.metrics import CoreStats
from repro.util import clock
from repro.envvars import REPRO_CACHE_DIR, REPRO_JIT_CACHE_DIR
from repro.isa.kinds import TransitionKind
from repro.prefetch.base import NullPrefetcher
from repro.prefetch.discontinuity import DiscontinuityPrefetcher
from repro.prefetch.sequential import (
    LookaheadN,
    NextLineAlways,
    NextLineOnMiss,
    NextLineTagged,
    NextNLineTagged,
)

logger = logging.getLogger(__name__)

_N_KINDS = len(TransitionKind)

#: widest discontinuity prefetch-ahead the kernel's fixed probe-hit
#: scratch arrays accommodate (the paper uses 4; ablations go to 8).
_MAX_DISC_AHEAD = 32

#: most cores one compiled interleave can hold (paper CMP is 4).
_MAX_CORES = 256


def kernel_source() -> str:
    """The C kernel, embedded so lint R6 fingerprints it like Python.

    Every function mirrors one reference hot path (named in the comment
    above it); the R6 ``PAIRS`` table points the reference side of each
    pair at this function, so editing ``engine.py``/``queue.py``/
    ``discontinuity.py`` hot paths without touching the kernel fails lint.
    """
    return r"""
/* repro jit kernel — scalar-exact replica of repro.core.engine.CoreEngine.
 *
 * Float discipline: compiled with -ffp-contract=off and no fast-math, so
 * every double op rounds exactly like the CPython interpreter's.  All
 * expressions below copy the reference source's operation order verbatim.
 */
#include <string.h>

/* repro.caches.line.LineState */
typedef struct {
    long long tag;
    double arrival;
    long long prov_kind;   /* 0 none, 1 ("seq",), 2 ("disc", index, line) */
    long long prov_index;
    long long prov_line;
    unsigned char prefetched, used, bypass_pending, from_memory, useless_hint;
} CLine;

/* repro.caches.cache.SetAssociativeCache (LRU only); each set is a way
 * array ordered LRU -> MRU with a live count. */
typedef struct {
    long long set_mask;
    long long assoc;
    CLine *lines;          /* (set_mask + 1) * assoc entries */
    long long *counts;     /* set_mask + 1 entries */
    long long lookups, hits, misses, installs, evictions;
} CCache;

/* repro.prefetch.queue.QueueEntry */
typedef struct {
    long long line;
    long long prov_kind, prov_index, prov_line;
    long long state;       /* QueueState: 0 WAITING, 1 ISSUED, 2 INVALID */
} CQEntry;

/* repro.prefetch.queue.PrefetchQueue + util.containers.BoundedRecentSet */
typedef struct {
    long long capacity, recent_capacity;
    long long lifo, filtering;
    CQEntry *entries;      /* capacity entries, oldest -> newest */
    long long n_entries;
    long long *recent;     /* recent_capacity + 1 entries, oldest -> newest */
    long long n_recent;
    long long waiting;
    long long offered, accepted, dropped_recent_demand, dropped_dup_issued,
        dropped_dup_invalid, hoisted, invalidated_by_demand, overflow_drops,
        popped;
} CQueue;

/* repro.prefetch.discontinuity.DiscontinuityTable (None source == -1) */
typedef struct {
    long long mask;
    long long counter_max;
    long long *sources;
    long long *targets;
    long long *counters;
    long long allocations, replacements, replacement_denied, target_updates,
        probe_hits, credits;
} CTable;

/* repro.cmp.link.OffChipLink */
typedef struct {
    double next_free, occupancy;
    long long requests;
    double busy_cycles, queue_delay_cycles;
} CLink;

/* One core: CoreEngine scalars + CoreStats + private components.  The L2
 * and link are pointers so sibling cores of one system share them. */
typedef struct {
    /* compiled trace columns (borrowed from the Python arrays) */
    const long long *t_lines;
    const signed char *t_kinds;
    const int *t_ninstr;
    const long long *t_data;
    const long long *t_offsets;
    const signed char *t_disc;
    long long visit_index, visit_count;

    /* clock / slot credit / warm boundary */
    double cycle, slot_credit, last_slot_cycle, cycle_mark;
    long long prev_line;
    long long total_instructions;
    long long warmed, warm_target, finished;

    /* timing scalars (precomputed by the Python engine, passed verbatim) */
    double slot_rate, exec_cpi, l2_latency, memory_latency,
        fetch_stall_exposed, data_l2_exposed, data_memory_exposed;
    long long line_shift;

    /* config flags */
    long long useless_hint_filter;
    long long pol_install_fills, pol_promote, pol_evict_install;
    const signed char *free_kind;   /* one flag per TransitionKind */

    /* prefetcher: 0 none, 1 nl-always, 2 nl-on-miss, 3 nl-tagged,
     * 4 next-N-line (ahead=degree), 5 lookahead-N (ahead=distance),
     * 6 discontinuity (ahead=prefetch_ahead, probe=probe_ahead) */
    long long pf_mode, pf_ahead, pf_probe;
    CTable table;

    /* CoreStats */
    long long instructions;
    double st_cycles, exec_cycles, fetch_stall_cycles, data_stall_cycles;
    long long l1i_fetches, l1i_misses, l2i_demand_accesses, l2i_demand_misses;
    long long data_accesses, l1d_misses, l2d_accesses, l2d_misses;
    long long *l1i_breakdown;
    long long *l2i_breakdown;

    /* PrefetchStats */
    long long generated, probe_found_present, issued, issued_from_l2,
        issued_from_memory, useful, useful_late, useful_from_memory,
        useless_evicted, dropped_useless_hint, promoted_to_l2;

    /* components */
    CCache l1i, l1d;
    CCache *l2;
    CLink *link;
    CQueue queue;

    /* repro.caches.mshr.OutstandingRequestTracker (insertion order kept) */
    long long *mshr_lines;
    double *mshr_arrivals;
    long long mshr_n, mshr_cap;
} CCore;

/* ---------------- SetAssociativeCache (LRU) ---------------- */

/* lookup(line) with update_recency=True */
static CLine *cache_lookup(CCache *cc, long long line) {
    long long si = line & cc->set_mask;
    CLine *base = cc->lines + si * cc->assoc;
    long long cnt = cc->counts[si];
    long long k, j;
    cc->lookups++;
    for (k = 0; k < cnt; k++) {
        if (base[k].tag == line) {
            cc->hits++;
            if (k != cnt - 1) {          /* move_to_end */
                CLine tmp = base[k];
                for (j = k; j < cnt - 1; j++) base[j] = base[j + 1];
                base[cnt - 1] = tmp;
            }
            return &base[cnt - 1];
        }
    }
    cc->misses++;
    return 0;
}

/* probe(line): tag check, no stats, no recency */
static CLine *cache_probe(CCache *cc, long long line) {
    long long si = line & cc->set_mask;
    CLine *base = cc->lines + si * cc->assoc;
    long long cnt = cc->counts[si], k;
    for (k = 0; k < cnt; k++)
        if (base[k].tag == line) return &base[k];
    return 0;
}

/* touch(line): recency only */
static void cache_touch(CCache *cc, long long line) {
    long long si = line & cc->set_mask;
    CLine *base = cc->lines + si * cc->assoc;
    long long cnt = cc->counts[si], k, j;
    for (k = 0; k < cnt; k++) {
        if (base[k].tag == line) {
            if (k != cnt - 1) {
                CLine tmp = base[k];
                for (j = k; j < cnt - 1; j++) base[j] = base[j + 1];
                base[cnt - 1] = tmp;
            }
            return;
        }
    }
}

/* install(line, state): returns 1 and fills *victim when a line was
 * evicted (resident replace refreshes recency, evicts nothing). */
static int cache_install(CCache *cc, const CLine *state, CLine *victim) {
    long long line = state->tag;
    long long si = line & cc->set_mask;
    CLine *base = cc->lines + si * cc->assoc;
    long long cnt = cc->counts[si], k, j;
    cc->installs++;
    for (k = 0; k < cnt; k++) {
        if (base[k].tag == line) {
            for (j = k; j < cnt - 1; j++) base[j] = base[j + 1];
            base[cnt - 1] = *state;
            return 0;
        }
    }
    if (cnt >= cc->assoc) {              /* popitem(last=False) */
        cc->evictions++;
        *victim = base[0];
        for (j = 0; j < cnt - 1; j++) base[j] = base[j + 1];
        cc->counts[si] = cnt;            /* cnt-1 evicted + 1 appended */
        base[cnt - 1] = *state;
        return 1;
    }
    base[cnt] = *state;
    cc->counts[si] = cnt + 1;
    return 0;
}

static CLine mkline(long long tag, int prefetched, int used, double arrival,
                    int bypass, int from_memory, long long pk, long long pi,
                    long long pl) {
    CLine s;
    s.tag = tag;
    s.arrival = arrival;
    s.prov_kind = pk;
    s.prov_index = pi;
    s.prov_line = pl;
    s.prefetched = (unsigned char)prefetched;
    s.used = (unsigned char)used;
    s.bypass_pending = (unsigned char)bypass;
    s.from_memory = (unsigned char)from_memory;
    s.useless_hint = 0;
    return s;
}

/* ---------------- OffChipLink.request ---------------- */

static double link_request(CLink *l, double now) {
    double start = l->next_free > now ? l->next_free : now;
    l->next_free = start + l->occupancy;
    l->requests++;
    l->busy_cycles += l->occupancy;
    l->queue_delay_cycles += start - now;
    return start;
}

/* ---------------- PrefetchQueue ---------------- */

/* note_demand_fetch(line): recent-set refresh + waiting-dup invalidation */
static void queue_note_demand(CQueue *q, long long line) {
    long long n, k, j, found;
    if (!q->filtering) return;
    n = q->n_recent;
    found = -1;
    for (k = 0; k < n; k++)
        if (q->recent[k] == line) { found = k; break; }
    if (found >= 0) {                    /* move_to_end */
        for (j = found; j < n - 1; j++) q->recent[j] = q->recent[j + 1];
        q->recent[n - 1] = line;
    } else {
        q->recent[n++] = line;
        if (n > q->recent_capacity) {    /* popitem(last=False) */
            for (j = 0; j < n - 1; j++) q->recent[j] = q->recent[j + 1];
            n--;
        }
        q->n_recent = n;
    }
    for (k = 0; k < q->n_entries; k++) { /* filtered: unique per line */
        if (q->entries[k].line == line) {
            if (q->entries[k].state == 0) {
                q->entries[k].state = 2;
                q->waiting--;
                q->invalidated_by_demand++;
            }
            break;
        }
    }
}

/* offer(candidate): filters, hoist, overflow — reference order exactly */
static void queue_offer(CQueue *q, long long line, long long pk, long long pi,
                        long long pl) {
    long long k, j;
    CQEntry *e;
    q->offered++;
    if (q->filtering) {
        for (k = 0; k < q->n_recent; k++)
            if (q->recent[k] == line) { q->dropped_recent_demand++; return; }
        for (k = 0; k < q->n_entries; k++) {
            if (q->entries[k].line == line) {
                long long st = q->entries[k].state;
                if (st == 0) {           /* hoist to the LIFO head */
                    CQEntry tmp = q->entries[k];
                    for (j = k; j < q->n_entries - 1; j++)
                        q->entries[j] = q->entries[j + 1];
                    q->entries[q->n_entries - 1] = tmp;
                    q->hoisted++;
                } else if (st == 1) {
                    q->dropped_dup_issued++;
                } else {
                    q->dropped_dup_invalid++;
                }
                return;
            }
        }
    }
    if (q->n_entries >= q->capacity) {   /* drop the oldest entry */
        if (q->entries[0].state == 0) q->waiting--;
        for (j = 0; j < q->n_entries - 1; j++) q->entries[j] = q->entries[j + 1];
        q->n_entries--;
        q->overflow_drops++;
    }
    e = &q->entries[q->n_entries++];
    e->line = line;
    e->prov_kind = pk;
    e->prov_index = pi;
    e->prov_line = pl;
    e->state = 0;
    q->accepted++;
    q->waiting++;
}

/* pop_ready(): newest-first scan (LIFO); entry stays as filter memory */
static long long queue_pop_ready(CQueue *q) {
    long long k;
    if (q->lifo) {
        for (k = q->n_entries - 1; k >= 0; k--)
            if (q->entries[k].state == 0) break;
    } else {
        for (k = 0; k < q->n_entries; k++)
            if (q->entries[k].state == 0) break;
        if (k >= q->n_entries) k = -1;
    }
    if (k < 0) return -1;
    q->entries[k].state = 1;
    q->waiting--;
    q->popped++;
    return k;
}

/* ---------------- OutstandingRequestTracker ---------------- */

static void mshr_prune(CCore *c, double now) {
    long long n = c->mshr_n, w = 0, k;
    for (k = 0; k < n; k++) {
        if (c->mshr_arrivals[k] > now) {
            c->mshr_lines[w] = c->mshr_lines[k];
            c->mshr_arrivals[w] = c->mshr_arrivals[k];
            w++;
        }
    }
    c->mshr_n = w;
}

static int mshr_can_accept(CCore *c, double now) {
    mshr_prune(c, now);
    return c->mshr_n < c->mshr_cap;
}

/* dict overwrite keeps the original position; append otherwise */
static void mshr_add(CCore *c, long long line, double arrival, double now) {
    long long k;
    mshr_prune(c, now);
    for (k = 0; k < c->mshr_n; k++)
        if (c->mshr_lines[k] == line) { c->mshr_arrivals[k] = arrival; return; }
    c->mshr_lines[c->mshr_n] = line;
    c->mshr_arrivals[c->mshr_n] = arrival;
    c->mshr_n++;
}

/* ---------------- DiscontinuityTable ---------------- */

static void table_observe(CTable *t, long long src, long long tgt) {
    long long idx = src & t->mask;
    long long res = t->sources[idx];
    if (res == src) {
        if (t->targets[idx] == tgt) return;
        if (t->counters[idx] == 0) {
            t->targets[idx] = tgt;
            t->counters[idx] = t->counter_max;
            t->target_updates++;
        } else {
            t->counters[idx]--;
        }
        return;
    }
    if (res == -1) {
        t->sources[idx] = src;
        t->targets[idx] = tgt;
        t->counters[idx] = t->counter_max;
        t->allocations++;
        return;
    }
    if (t->counters[idx] == 0) {
        t->sources[idx] = src;
        t->targets[idx] = tgt;
        t->counters[idx] = t->counter_max;
        t->replacements++;
    } else {
        t->counters[idx]--;
        t->replacement_denied++;
    }
}

static int table_predict(CTable *t, long long src, long long *target) {
    long long idx = src & t->mask;
    if (t->sources[idx] == src) {
        t->probe_hits++;
        *target = t->targets[idx];
        return 1;
    }
    return 0;
}

static void table_credit(CTable *t, long long idx, long long src) {
    if (t->sources[idx] == src) {
        if (t->counters[idx] < t->counter_max) t->counters[idx]++;
        t->credits++;
    }
}

/* ---------------- CoreEngine fill paths ---------------- */

static void install_l2(CCore *c, const CLine *state) {
    CLine victim;
    cache_install(c->l2, state, &victim);
    /* l2_eviction_hook is None on this path (binding eligibility) */
}

/* CoreEngine._install_l1i */
static void install_l1i(CCore *c, const CLine *state, double now) {
    CLine victim;
    if (!cache_install(&c->l1i, state, &victim)) return;
    if (victim.prefetched) {
        c->useless_evicted++;
        if (c->useless_hint_filter) {
            CLine *l2_copy = cache_probe(c->l2, victim.tag);
            if (l2_copy) l2_copy->useless_hint = 1;
        }
        return;
    }
    if (victim.bypass_pending && victim.used) {
        if (c->pol_evict_install && cache_probe(c->l2, victim.tag) == 0) {
            CLine promoted = mkline(victim.tag, 0, 1, now, 0, 0, 0, 0, 0);
            install_l2(c, &promoted);
            c->promoted_to_l2++;
        }
    }
}

/* CoreEngine._demand_fill */
static double demand_fill(CCore *c, long long line, long long kind, double now) {
    CLine *l2_state;
    double stall, arrival;
    CLine fill;
    c->l2i_demand_accesses++;
    l2_state = cache_lookup(c->l2, line);
    if (l2_state) {
        l2_state->used = 1;
        l2_state->prefetched = 0;
        l2_state->useless_hint = 0;
        stall = c->l2_latency;
        if (l2_state->arrival > now + stall) stall = l2_state->arrival - now;
    } else {
        double start;
        c->l2i_demand_misses++;
        c->l2i_breakdown[kind]++;
        start = link_request(c->link, now);
        stall = (start - now) + c->memory_latency;
        arrival = now + stall;
        fill = mkline(line, 0, 1, arrival, 0, 0, 0, 0, 0);
        install_l2(c, &fill);
    }
    arrival = now + stall;
    fill = mkline(line, 0, 1, arrival, 0, 0, 0, 0, 0);
    install_l1i(c, &fill, now);
    return stall;
}

/* CoreEngine._issue_one */
static void issue_one(CCore *c, long long line, long long pk, long long pi,
                      long long pl, double now) {
    CLine *l2_state = cache_probe(c->l2, line);
    double start, arrival;
    CLine fill;
    int bypass;
    if (l2_state && c->useless_hint_filter && l2_state->useless_hint) {
        c->dropped_useless_hint++;
        return;
    }
    if (l2_state) {
        arrival = now + c->l2_latency;
        if (l2_state->arrival > arrival) arrival = l2_state->arrival;
        if (c->pol_promote) cache_touch(c->l2, line);
        c->issued++;
        c->issued_from_l2++;
        fill = mkline(line, 1, 0, arrival, 0, 0, pk, pi, pl);
        install_l1i(c, &fill, now);
        return;
    }
    start = link_request(c->link, now);
    arrival = start + c->memory_latency;
    mshr_add(c, line, arrival, now);
    c->issued++;
    c->issued_from_memory++;
    bypass = !c->pol_install_fills;
    if (!bypass) {
        fill = mkline(line, 1, 0, arrival, 0, 0, 0, 0, 0);
        install_l2(c, &fill);
    }
    fill = mkline(line, 1, 0, arrival, bypass, 1, pk, pi, pl);
    install_l1i(c, &fill, now);
}

/* CoreEngine._issue_prefetches (_MAX_ISSUE_PER_VISIT == 8) */
static void issue_prefetches(CCore *c, double now) {
    double elapsed = now - c->last_slot_cycle;
    double credit;
    long long slots, s;
    c->last_slot_cycle = now;
    credit = c->slot_credit + elapsed * c->slot_rate;
    slots = (long long)credit;
    if (slots <= 0) { c->slot_credit = credit; return; }
    if (slots > 8) { slots = 8; credit = (double)slots; }
    c->slot_credit = credit - (double)slots;
    if (c->queue.waiting == 0) return;
    for (s = 0; s < slots; s++) {
        long long ei = queue_pop_ready(&c->queue);
        CQEntry *e;
        if (ei < 0) break;
        e = &c->queue.entries[ei];
        if (cache_probe(&c->l1i, e->line)) {
            c->probe_found_present++;
            continue;
        }
        if (!mshr_can_accept(c, now)) {  /* requeue + stop */
            e->state = 0;
            c->queue.waiting++;
            break;
        }
        issue_one(c, e->line, e->prov_kind, e->prov_index, e->prov_line, now);
    }
}

/* CoreEngine._data_miss */
static double data_miss(CCore *c, long long line, double now) {
    CLine *l2_state;
    double exposed;
    CLine fill, victim;
    c->l1d_misses++;
    c->l2d_accesses++;
    l2_state = cache_lookup(c->l2, line);
    if (l2_state) {
        l2_state->used = 1;
        exposed = c->data_l2_exposed;
    } else {
        double start, raw;
        c->l2d_misses++;
        start = link_request(c->link, now);
        raw = (start - now) + c->memory_latency;
        exposed = raw * c->data_memory_exposed;
        fill = mkline(line, 0, 1, now + raw, 0, 0, 0, 0, 0);
        install_l2(c, &fill);
    }
    fill = mkline(line, 0, 1, 0.0, 0, 0, 0, 0, 0);
    cache_install(&c->l1d, &fill, &victim);
    c->data_stall_cycles += exposed;
    return exposed;
}

/* CoreStats.reset at the warm/measure boundary */
static void reset_stats(CCore *c) {
    long long k;
    c->instructions = 0;
    c->st_cycles = 0.0;
    c->exec_cycles = 0.0;
    c->fetch_stall_cycles = 0.0;
    c->data_stall_cycles = 0.0;
    c->l1i_fetches = 0;
    c->l1i_misses = 0;
    c->l2i_demand_accesses = 0;
    c->l2i_demand_misses = 0;
    c->data_accesses = 0;
    c->l1d_misses = 0;
    c->l2d_accesses = 0;
    c->l2d_misses = 0;
    for (k = 0; k < 9; k++) {            /* len(TransitionKind) == 9 */
        c->l1i_breakdown[k] = 0;
        c->l2i_breakdown[k] = 0;
    }
    c->generated = 0;
    c->probe_found_present = 0;
    c->issued = 0;
    c->issued_from_l2 = 0;
    c->issued_from_memory = 0;
    c->useful = 0;
    c->useful_late = 0;
    c->useful_from_memory = 0;
    c->useless_evicted = 0;
    c->dropped_useless_hint = 0;
    c->promoted_to_l2 = 0;
}

/* CoreEngine._process_visit, steps (1)-(6) */
static void process_visit(CCore *c) {
    long long i = c->visit_index;
    long long line = c->t_lines[i];
    long long kind = (long long)c->t_kinds[i];
    long long ninstr = (long long)c->t_ninstr[i];
    long long dstart = c->t_offsets[i];
    long long dend = c->t_offsets[i + 1];
    int disc = c->t_disc[i] != 0;
    double now = c->cycle;
    double last, credit, stall, exec_cycles;
    CLine *state;
    int first_use = 0, was_miss;
    long long di;
    c->visit_index = i + 1;

    /* (1) prefetch issue, with the inlined no-slot guard */
    last = c->last_slot_cycle;
    credit = c->slot_credit + (now - last) * c->slot_rate;
    if (credit < 1.0) {
        c->last_slot_cycle = now;
        c->slot_credit = credit;
    } else {
        issue_prefetches(c, now);
    }

    /* (2) demand fetch */
    c->l1i_fetches++;
    state = cache_lookup(&c->l1i, line);
    stall = 0.0;
    if (state) {
        was_miss = 0;
        if (state->prefetched) {
            first_use = 1;
            state->prefetched = 0;
            c->useful++;
            if (state->from_memory) c->useful_from_memory++;
            if (state->prov_kind == 2 && c->pf_mode == 6)
                table_credit(&c->table, state->prov_index, state->prov_line);
            if (state->arrival > now) {
                stall = state->arrival - now;
                c->useful_late++;
            }
        }
        state->used = 1;
    } else {
        was_miss = 1;
        c->l1i_misses++;
        c->l1i_breakdown[kind]++;
        stall = demand_fill(c, line, kind, now);
        if (c->free_kind[kind]) stall = 0.0;
    }

    /* (3) discontinuity observation (no-op for every mode but 6) */
    if (disc && c->pf_mode == 6 && was_miss)
        table_observe(&c->table, c->prev_line, line);
    c->prev_line = line;

    /* (4) prefetch generation + filtering (queue sees the demand first) */
    queue_note_demand(&c->queue, line);
    switch (c->pf_mode) {
    case 1:                              /* next-line-always */
        c->generated += 1;
        queue_offer(&c->queue, line + 1, 1, 0, 0);
        break;
    case 2:                              /* next-line-on-miss */
        if (was_miss) {
            c->generated += 1;
            queue_offer(&c->queue, line + 1, 1, 0, 0);
        }
        break;
    case 3:                              /* next-line-tagged */
        if (was_miss || first_use) {
            c->generated += 1;
            queue_offer(&c->queue, line + 1, 1, 0, 0);
        }
        break;
    case 4:                              /* next-N-line tagged */
        if (was_miss || first_use) {
            long long d;
            c->generated += c->pf_ahead;
            for (d = 1; d <= c->pf_ahead; d++)
                queue_offer(&c->queue, line + d, 1, 0, 0);
        }
        break;
    case 5:                              /* lookahead-N */
        if (was_miss || first_use) {
            c->generated += 1;
            queue_offer(&c->queue, line + c->pf_ahead, 1, 0, 0);
        }
        break;
    case 6:                              /* discontinuity */
        if (was_miss || first_use) {
            /* The reference builds the full candidate list first (table
             * probes count probe_hits before any offer), then offers in
             * order: seq L+1..L+ahead, then each probe hit's target run. */
            long long ptgt[33], pidx[33], plin[33], prem[33];
            long long nhits = 0, total = c->pf_ahead;
            long long probe_window = c->pf_probe ? c->pf_ahead : 0;
            long long off, d, h;
            for (off = 0; off <= probe_window; off++) {
                long long probe_line = line + off, target;
                if (table_predict(&c->table, probe_line, &target)) {
                    ptgt[nhits] = target;
                    pidx[nhits] = probe_line & c->table.mask;
                    plin[nhits] = probe_line;
                    prem[nhits] = c->pf_ahead - off;
                    total += prem[nhits] + 1;
                    nhits++;
                }
            }
            c->generated += total;
            for (d = 1; d <= c->pf_ahead; d++)  /* always != line (d >= 1) */
                queue_offer(&c->queue, line + d, 1, 0, 0);
            for (h = 0; h < nhits; h++) {
                long long extra;
                for (extra = 0; extra <= prem[h]; extra++) {
                    long long cand = ptgt[h] + extra;
                    if (cand != line)
                        queue_offer(&c->queue, cand, 2, pidx[h], plin[h]);
                }
            }
        }
        break;
    default:
        break;                           /* mode 0: none */
    }

    if (stall > 0.0) {
        stall *= c->fetch_stall_exposed;
        c->fetch_stall_cycles += stall;
        credit = c->slot_credit + stall * c->slot_rate;
        c->slot_credit = credit;
        if (credit >= 1.0) issue_prefetches(c, now);
        now += stall;
        c->last_slot_cycle = now;
    }

    /* consume_overhead_cycles() is 0.0 for every kernel-supported mode */

    /* (5) data accesses */
    for (di = dstart; di < dend; di++) {
        long long dline;
        c->data_accesses++;
        dline = c->t_data[di] >> c->line_shift;
        if (cache_lookup(&c->l1d, dline) == 0) now += data_miss(c, dline, now);
    }

    /* (6) execution */
    exec_cycles = (double)ninstr * c->exec_cpi;
    c->exec_cycles += exec_cycles;
    now += exec_cycles;
    c->cycle = now;
    c->instructions += ninstr;
    c->total_instructions += ninstr;

    if (!c->warmed && c->total_instructions >= c->warm_target) {
        reset_stats(c);
        c->warmed = 1;
        c->cycle_mark = now;
    }
}

/* step()-granularity driver: process visits until *stop* (exclusive) */
void repro_span(CCore *c, long long stop) {
    if (stop > c->visit_count) stop = c->visit_count;
    while (c->visit_index < stop) process_visit(c);
}

/* CoreEngine.run(): whole trace + the trace-end finish bookkeeping */
void repro_run(CCore *c) {
    while (c->visit_index < c->visit_count) process_visit(c);
    c->finished = 1;
    c->st_cycles = c->cycle - c->cycle_mark;
}

/* System.run() multi-core branch: advance the core with the smallest
 * local clock (first minimum wins ties, matching the Python scan), drop
 * finished cores preserving order. */
void repro_run_system(CCore **cores, long long n) {
    long long active[256];
    long long na = 0, k;
    for (k = 0; k < n && k < 256; k++) active[na++] = k;
    while (na > 0) {
        long long best = 0;
        CCore *c;
        for (k = 1; k < na; k++)
            if (cores[active[k]]->cycle < cores[active[best]]->cycle) best = k;
        c = cores[active[best]];
        if (c->visit_index >= c->visit_count) {
            c->finished = 1;
            c->st_cycles = c->cycle - c->cycle_mark;
            for (k = best; k < na - 1; k++) active[k] = active[k + 1];
            na--;
        } else {
            process_visit(c);
        }
    }
}
"""


# --------------------------------------------------------------------- #
# ctypes mirrors of the kernel structs (field order must match the C)
# --------------------------------------------------------------------- #

_LL = ctypes.c_longlong
_DBL = ctypes.c_double


class _CLine(ctypes.Structure):
    _fields_ = [
        ("tag", _LL),
        ("arrival", _DBL),
        ("prov_kind", _LL),
        ("prov_index", _LL),
        ("prov_line", _LL),
        ("prefetched", ctypes.c_ubyte),
        ("used", ctypes.c_ubyte),
        ("bypass_pending", ctypes.c_ubyte),
        ("from_memory", ctypes.c_ubyte),
        ("useless_hint", ctypes.c_ubyte),
    ]


class _CCache(ctypes.Structure):
    _fields_ = [
        ("set_mask", _LL),
        ("assoc", _LL),
        ("lines", ctypes.POINTER(_CLine)),
        ("counts", ctypes.POINTER(_LL)),
        ("lookups", _LL),
        ("hits", _LL),
        ("misses", _LL),
        ("installs", _LL),
        ("evictions", _LL),
    ]


class _CQEntry(ctypes.Structure):
    _fields_ = [
        ("line", _LL),
        ("prov_kind", _LL),
        ("prov_index", _LL),
        ("prov_line", _LL),
        ("state", _LL),
    ]


class _CQueue(ctypes.Structure):
    _fields_ = [
        ("capacity", _LL),
        ("recent_capacity", _LL),
        ("lifo", _LL),
        ("filtering", _LL),
        ("entries", ctypes.POINTER(_CQEntry)),
        ("n_entries", _LL),
        ("recent", ctypes.POINTER(_LL)),
        ("n_recent", _LL),
        ("waiting", _LL),
        ("offered", _LL),
        ("accepted", _LL),
        ("dropped_recent_demand", _LL),
        ("dropped_dup_issued", _LL),
        ("dropped_dup_invalid", _LL),
        ("hoisted", _LL),
        ("invalidated_by_demand", _LL),
        ("overflow_drops", _LL),
        ("popped", _LL),
    ]


class _CTable(ctypes.Structure):
    _fields_ = [
        ("mask", _LL),
        ("counter_max", _LL),
        ("sources", ctypes.POINTER(_LL)),
        ("targets", ctypes.POINTER(_LL)),
        ("counters", ctypes.POINTER(_LL)),
        ("allocations", _LL),
        ("replacements", _LL),
        ("replacement_denied", _LL),
        ("target_updates", _LL),
        ("probe_hits", _LL),
        ("credits", _LL),
    ]


class _CLink(ctypes.Structure):
    _fields_ = [
        ("next_free", _DBL),
        ("occupancy", _DBL),
        ("requests", _LL),
        ("busy_cycles", _DBL),
        ("queue_delay_cycles", _DBL),
    ]


class _CCore(ctypes.Structure):
    _fields_ = [
        ("t_lines", ctypes.POINTER(_LL)),
        ("t_kinds", ctypes.POINTER(ctypes.c_byte)),
        ("t_ninstr", ctypes.POINTER(ctypes.c_int)),
        ("t_data", ctypes.POINTER(_LL)),
        ("t_offsets", ctypes.POINTER(_LL)),
        ("t_disc", ctypes.POINTER(ctypes.c_byte)),
        ("visit_index", _LL),
        ("visit_count", _LL),
        ("cycle", _DBL),
        ("slot_credit", _DBL),
        ("last_slot_cycle", _DBL),
        ("cycle_mark", _DBL),
        ("prev_line", _LL),
        ("total_instructions", _LL),
        ("warmed", _LL),
        ("warm_target", _LL),
        ("finished", _LL),
        ("slot_rate", _DBL),
        ("exec_cpi", _DBL),
        ("l2_latency", _DBL),
        ("memory_latency", _DBL),
        ("fetch_stall_exposed", _DBL),
        ("data_l2_exposed", _DBL),
        ("data_memory_exposed", _DBL),
        ("line_shift", _LL),
        ("useless_hint_filter", _LL),
        ("pol_install_fills", _LL),
        ("pol_promote", _LL),
        ("pol_evict_install", _LL),
        ("free_kind", ctypes.POINTER(ctypes.c_byte)),
        ("pf_mode", _LL),
        ("pf_ahead", _LL),
        ("pf_probe", _LL),
        ("table", _CTable),
        ("instructions", _LL),
        ("st_cycles", _DBL),
        ("exec_cycles", _DBL),
        ("fetch_stall_cycles", _DBL),
        ("data_stall_cycles", _DBL),
        ("l1i_fetches", _LL),
        ("l1i_misses", _LL),
        ("l2i_demand_accesses", _LL),
        ("l2i_demand_misses", _LL),
        ("data_accesses", _LL),
        ("l1d_misses", _LL),
        ("l2d_accesses", _LL),
        ("l2d_misses", _LL),
        ("l1i_breakdown", ctypes.POINTER(_LL)),
        ("l2i_breakdown", ctypes.POINTER(_LL)),
        ("generated", _LL),
        ("probe_found_present", _LL),
        ("issued", _LL),
        ("issued_from_l2", _LL),
        ("issued_from_memory", _LL),
        ("useful", _LL),
        ("useful_late", _LL),
        ("useful_from_memory", _LL),
        ("useless_evicted", _LL),
        ("dropped_useless_hint", _LL),
        ("promoted_to_l2", _LL),
        ("l1i", _CCache),
        ("l1d", _CCache),
        ("l2", ctypes.POINTER(_CCache)),
        ("link", ctypes.POINTER(_CLink)),
        ("queue", _CQueue),
        ("mshr_lines", ctypes.POINTER(_LL)),
        ("mshr_arrivals", ctypes.POINTER(_DBL)),
        ("mshr_n", _LL),
        ("mshr_cap", _LL),
    ]


# --------------------------------------------------------------------- #
# Kernel build + cache + availability
# --------------------------------------------------------------------- #

_kernel_lib: object = None
_kernel_probed = False
_compile_seconds = 0.0


def kernel_cache_dir() -> Path:
    """Directory holding the compiled kernel (``REPRO_JIT_CACHE_DIR``)."""
    explicit = os.environ.get(REPRO_JIT_CACHE_DIR, "")
    if explicit:
        return Path(explicit)
    base = os.environ.get(REPRO_CACHE_DIR, "") or ".repro-cache"
    return Path(base) / "jit"


def kernel_source_hash() -> str:
    """Hash naming the cached shared object (and the CI cache key)."""
    return hashlib.sha256(kernel_source().encode("utf-8")).hexdigest()[:16]


def _build_kernel():
    """Compile (or load from cache) the kernel; return the loaded library."""
    global _compile_seconds
    digest = kernel_source_hash()
    cache_dir = kernel_cache_dir()
    so_path = cache_dir / f"repro_jit_{digest}.so"
    if not so_path.exists():
        compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
        if compiler is None:
            raise RuntimeError("no C compiler (cc/gcc/clang) on PATH")
        cache_dir.mkdir(parents=True, exist_ok=True)
        c_path = cache_dir / f"repro_jit_{digest}.c"
        c_path.write_text(kernel_source())
        # Atomic publish: concurrent builders race benignly to os.replace.
        tmp_path = cache_dir / f".repro_jit_{digest}.{os.getpid()}.so.tmp"
        # Wall-clock here times the one-off toolchain invocation for the
        # compile-cost report; it can never influence simulated results.
        started = clock.perf_counter()
        try:
            subprocess.run(
                [
                    compiler,
                    "-O2",
                    "-fPIC",
                    "-shared",
                    # Forbid FMA contraction: every double op must round
                    # exactly like the CPython interpreter's.
                    "-ffp-contract=off",
                    "-o",
                    str(tmp_path),
                    str(c_path),
                ],
                check=True,
                capture_output=True,
                text=True,
            )
        except subprocess.CalledProcessError as exc:
            raise RuntimeError(f"kernel compilation failed: {exc.stderr}") from exc
        _compile_seconds = clock.perf_counter() - started
        os.replace(tmp_path, so_path)
    lib = ctypes.CDLL(str(so_path))
    lib.repro_span.argtypes = [ctypes.POINTER(_CCore), _LL]
    lib.repro_span.restype = None
    lib.repro_run.argtypes = [ctypes.POINTER(_CCore)]
    lib.repro_run.restype = None
    lib.repro_run_system.argtypes = [ctypes.POINTER(ctypes.POINTER(_CCore)), _LL]
    lib.repro_run_system.restype = None
    return lib


def _kernel():
    """The loaded kernel library, or None when unavailable (one warning)."""
    global _kernel_lib, _kernel_probed
    if not _kernel_probed:
        _kernel_probed = True
        try:
            _kernel_lib = _build_kernel()
        except Exception as exc:
            logger.warning(
                "jit engine backend unavailable (%s); "
                "falling back to the reference backend",
                exc,
            )
            _kernel_lib = None
    return _kernel_lib


def jit_available() -> bool:
    """True when the compiled kernel can be (or has been) loaded."""
    return _kernel() is not None


def kernel_compile_seconds() -> float:
    """One-time compile cost paid by *this* process (0.0 on a cache hit)."""
    return _compile_seconds


# --------------------------------------------------------------------- #
# Marshaling Python state into the C structs
# --------------------------------------------------------------------- #

#: exact prefetcher type -> kernel pf_mode (subclasses with overridden
#: behavior must not match, hence ``type() is``-style lookup).
_PF_MODES = {
    NullPrefetcher: 0,
    NextLineAlways: 1,
    NextLineOnMiss: 2,
    NextLineTagged: 3,
    NextNLineTagged: 4,
    LookaheadN: 5,
    DiscontinuityPrefetcher: 6,
}


def _encode_prov(provenance):
    """(kind, index, line) encoding of a candidate/line provenance."""
    if provenance is None:
        return 0, 0, 0
    tag = provenance[0]
    if tag == "seq":
        return 1, 0, 0
    if tag == "disc":
        return 2, provenance[1], provenance[2]
    raise ValueError(f"unsupported provenance {provenance!r}")


def _line_to_c(line: int, state) -> _CLine:
    pk, pi, pl = _encode_prov(state.provenance)
    return _CLine(
        tag=line,
        arrival=float(state.arrival),
        prov_kind=pk,
        prov_index=pi,
        prov_line=pl,
        prefetched=1 if state.prefetched else 0,
        used=1 if state.used else 0,
        bypass_pending=1 if state.bypass_pending else 0,
        from_memory=1 if state.from_memory else 0,
        useless_hint=1 if state.useless_hint else 0,
    )


_CACHE_STAT_FIELDS = ("lookups", "hits", "misses", "installs", "evictions")


class _CacheImage:
    """C image of one :class:`SetAssociativeCache` (LRU sets as arrays)."""

    def __init__(self, cache: SetAssociativeCache) -> None:
        n_sets = cache._set_mask + 1
        assoc = cache._assoc
        self.lines = (_CLine * (n_sets * assoc))()
        self.counts = (_LL * n_sets)()
        for si, cache_set in enumerate(cache._sets):
            base = si * assoc
            for k, (line, state) in enumerate(cache_set.items()):
                self.lines[base + k] = _line_to_c(line, state)
            self.counts[si] = len(cache_set)
        stats = cache.stats
        self.struct = _CCache(
            set_mask=cache._set_mask,
            assoc=assoc,
            lines=ctypes.cast(self.lines, ctypes.POINTER(_CLine)),
            counts=ctypes.cast(self.counts, ctypes.POINTER(_LL)),
            lookups=stats.lookups,
            hits=stats.hits,
            misses=stats.misses,
            installs=stats.installs,
            evictions=stats.evictions,
        )


def _sync_cache_stats(cache: SetAssociativeCache, cstruct: _CCache) -> None:
    stats = cache.stats
    for name in _CACHE_STAT_FIELDS:
        setattr(stats, name, getattr(cstruct, name))


class _JitSystem:
    """Shared C images (L2 + off-chip link) for one system's engines.

    Sibling engines of one :class:`~repro.cmp.system.System` share the L2
    and link objects; their kernels must therefore share one C image of
    each.  Instances are discovered through a :data:`weakref` registry
    keyed by link identity — safe against id reuse because a live entry
    holds its link alive — and kept alive by the engines that bound them.
    """

    def __init__(self, link, l2: SetAssociativeCache) -> None:
        self.link = link
        self.l2 = l2
        self.l2_image = _CacheImage(l2)
        self.c_l2 = self.l2_image.struct
        stats = link.stats
        self.c_link = _CLink(
            next_free=link._next_free,
            occupancy=link.occupancy_cycles,
            requests=stats.requests,
            busy_cycles=stats.busy_cycles,
            queue_delay_cycles=stats.queue_delay_cycles,
        )

    def sync_out(self) -> None:
        _sync_cache_stats(self.l2, self.c_l2)
        self.link._next_free = self.c_link.next_free
        stats = self.link.stats
        stats.requests = self.c_link.requests
        stats.busy_cycles = self.c_link.busy_cycles
        stats.queue_delay_cycles = self.c_link.queue_delay_cycles


_SYSTEMS: "weakref.WeakValueDictionary[int, _JitSystem]" = weakref.WeakValueDictionary()


def _system_for(link, l2) -> _JitSystem:
    key = id(link)
    jitsys = _SYSTEMS.get(key)
    if jitsys is not None and jitsys.link is link and jitsys.l2 is l2:
        return jitsys
    jitsys = _JitSystem(link, l2)
    _SYSTEMS[key] = jitsys
    return jitsys


_QUEUE_STAT_FIELDS = (
    "offered",
    "accepted",
    "dropped_recent_demand",
    "dropped_dup_issued",
    "dropped_dup_invalid",
    "hoisted",
    "invalidated_by_demand",
    "overflow_drops",
    "popped",
)

_TABLE_STAT_FIELDS = (
    "allocations",
    "replacements",
    "replacement_denied",
    "target_updates",
    "probe_hits",
    "credits",
)

_PF_STAT_FIELDS = (
    "generated",
    "probe_found_present",
    "issued",
    "issued_from_l2",
    "issued_from_memory",
    "useful",
    "useful_late",
    "useful_from_memory",
    "useless_evicted",
    "dropped_useless_hint",
    "promoted_to_l2",
)


# --------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------- #


class JittedCoreEngine(CoreEngine):
    """Drop-in :class:`CoreEngine` stepping through the compiled kernel."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._twin_ok: Optional[bool] = None
        self._c: Optional[_CCore] = None
        self._c_started = False
        self._lib = None
        self._jit_system: Optional[_JitSystem] = None
        self._buffers: list = []

    # ------------------------------------------------------------------ #
    # Eligibility + binding
    # ------------------------------------------------------------------ #

    def _twin_ready(self) -> bool:
        """Decide (once, lazily — the system wires ``l2_eviction_hook``
        after construction) whether the kernel replicates this
        configuration exactly; bind the state into C if so."""
        ok = self._twin_ok
        if ok is None:
            prefetcher = self.prefetcher
            ok = (
                self._compiled is not None
                and self.l2_eviction_hook is None
                and self.l1i._is_lru
                and self.l1d._is_lru
                and self.l2._is_lru
                and type(prefetcher) in _PF_MODES
                and jit_available()
            )
            if ok and type(prefetcher) is DiscontinuityPrefetcher:
                ok = prefetcher.prefetch_ahead <= _MAX_DISC_AHEAD
            if ok:
                try:
                    self._bind()
                except Exception:
                    logger.exception(
                        "jit bind failed; falling back to reference stepping"
                    )
                    ok = False
            self._twin_ok = ok
        return ok

    def _bind(self) -> None:
        """Marshal the engine's entire live state into a ``CCore``."""
        lib = _kernel()
        assert lib is not None  # guarded by jit_available() in _twin_ready
        self._lib = lib
        trace = self._compiled
        c = _CCore()
        keep = self._buffers

        def col(column, ctype):
            address, _length = column.buffer_info()
            return ctypes.cast(ctypes.c_void_p(address), ctypes.POINTER(ctype))

        # Trace columns are borrowed; self.trace keeps the arrays alive.
        c.t_lines = col(trace.lines, _LL)
        c.t_kinds = col(trace.kinds, ctypes.c_byte)
        c.t_ninstr = col(trace.ninstr, ctypes.c_int)
        c.t_data = col(trace.data, _LL)
        c.t_offsets = col(trace.offsets, _LL)
        c.t_disc = col(trace.disc, ctypes.c_byte)
        c.visit_index = self._visit_index
        c.visit_count = self._c_count

        c.cycle = self.cycle
        c.slot_credit = self._slot_credit
        c.last_slot_cycle = self._last_slot_cycle
        c.cycle_mark = self._cycle_mark
        c.prev_line = self._prev_line
        c.total_instructions = self.total_instructions
        c.warmed = 1 if self._warmed else 0
        c.warm_target = self._warm_target
        c.finished = 1 if self._finished else 0

        c.slot_rate = self._slot_rate
        c.exec_cpi = self._exec_cpi
        c.l2_latency = self._l2_latency
        c.memory_latency = self._memory_latency
        c.fetch_stall_exposed = self._fetch_stall_exposed
        c.data_l2_exposed = self._data_l2_exposed
        c.data_memory_exposed = self._data_memory_exposed
        c.line_shift = self._line_shift

        c.useless_hint_filter = 1 if self._useless_hint_filter else 0
        policy = self._l2_policy
        c.pol_install_fills = 1 if policy.install_prefetch_fills else 0
        c.pol_promote = 1 if policy.promote_on_prefetch_hit else 0
        c.pol_evict_install = 1 if policy.install_used_on_eviction else 0
        free_kind = (ctypes.c_byte * _N_KINDS)(
            *(1 if flag else 0 for flag in self._free_kind)
        )
        keep.append(free_kind)
        c.free_kind = ctypes.cast(free_kind, ctypes.POINTER(ctypes.c_byte))

        # Prefetcher: mode + parameters + (for mode 6) the table arrays.
        prefetcher = self.prefetcher
        mode = _PF_MODES[type(prefetcher)]
        c.pf_mode = mode
        if mode == 4:
            c.pf_ahead = prefetcher.degree
        elif mode == 5:
            c.pf_ahead = prefetcher.distance
        elif mode == 6:
            c.pf_ahead = prefetcher.prefetch_ahead
            c.pf_probe = 1 if prefetcher.probe_ahead else 0
        if mode == 6:
            table = prefetcher.table
            n = table.entries
            sources = (_LL * n)(
                *(-1 if src is None else src for src in table._sources)
            )
            targets = (_LL * n)(*table._targets)
            counters = (_LL * n)(*table._counters)
        else:
            sources = (_LL * 1)(-1)
            targets = (_LL * 1)()
            counters = (_LL * 1)()
        keep.extend((sources, targets, counters))
        tstats = prefetcher.table.stats if mode == 6 else None
        c.table = _CTable(
            mask=prefetcher.table._mask if mode == 6 else 0,
            counter_max=prefetcher.table.counter_max if mode == 6 else 0,
            sources=ctypes.cast(sources, ctypes.POINTER(_LL)),
            targets=ctypes.cast(targets, ctypes.POINTER(_LL)),
            counters=ctypes.cast(counters, ctypes.POINTER(_LL)),
            **{name: getattr(tstats, name) if tstats else 0 for name in _TABLE_STAT_FIELDS},
        )

        # CoreStats (binding may happen mid-run; counters carry over).
        stats = self.stats
        c.instructions = stats.instructions
        c.st_cycles = stats.cycles
        c.exec_cycles = stats.exec_cycles
        c.fetch_stall_cycles = stats.fetch_stall_cycles
        c.data_stall_cycles = stats.data_stall_cycles
        c.l1i_fetches = stats.l1i_fetches
        c.l1i_misses = stats.l1i_misses
        c.l2i_demand_accesses = stats.l2i_demand_accesses
        c.l2i_demand_misses = stats.l2i_demand_misses
        c.data_accesses = stats.data_accesses
        c.l1d_misses = stats.l1d_misses
        c.l2d_accesses = stats.l2d_accesses
        c.l2d_misses = stats.l2d_misses
        l1i_bd = (_LL * _N_KINDS)(*stats.l1i_breakdown._counts)
        l2i_bd = (_LL * _N_KINDS)(*stats.l2i_breakdown._counts)
        keep.extend((l1i_bd, l2i_bd))
        c.l1i_breakdown = ctypes.cast(l1i_bd, ctypes.POINTER(_LL))
        c.l2i_breakdown = ctypes.cast(l2i_bd, ctypes.POINTER(_LL))
        self._c_l1i_bd = l1i_bd
        self._c_l2i_bd = l2i_bd
        pf_stats = stats.prefetch
        for name in _PF_STAT_FIELDS:
            setattr(c, name, getattr(pf_stats, name))

        # Private caches are inline; the shared L2 + link live in the
        # per-system image so sibling cores mutate one copy.
        l1i_image = _CacheImage(self.l1i)
        l1d_image = _CacheImage(self.l1d)
        keep.extend((l1i_image, l1d_image))
        c.l1i = l1i_image.struct
        c.l1d = l1d_image.struct
        jitsys = _system_for(self.link, self.l2)
        self._jit_system = jitsys
        c.l2 = ctypes.pointer(jitsys.c_l2)
        c.link = ctypes.pointer(jitsys.c_link)

        # Queue (entries + recent-demand filter + stats).
        queue = self.queue
        qconfig = queue._config
        entries = (_CQEntry * qconfig.capacity)()
        for k, entry in enumerate(queue._entries):
            pk, pi, pl = _encode_prov(entry.provenance)
            entries[k] = _CQEntry(
                line=entry.line, prov_kind=pk, prov_index=pi, prov_line=pl,
                state=int(entry.state),
            )
        recent = (_LL * (qconfig.recent_capacity + 1))()
        recent_keys = list(queue._recent._entries.keys())
        for k, line in enumerate(recent_keys):
            recent[k] = line
        keep.extend((entries, recent))
        qstats = queue.stats
        c.queue = _CQueue(
            capacity=qconfig.capacity,
            recent_capacity=qconfig.recent_capacity,
            lifo=1 if qconfig.lifo else 0,
            filtering=1 if qconfig.filtering else 0,
            entries=ctypes.cast(entries, ctypes.POINTER(_CQEntry)),
            n_entries=len(queue._entries),
            recent=ctypes.cast(recent, ctypes.POINTER(_LL)),
            n_recent=len(recent_keys),
            waiting=queue.waiting,
            **{name: getattr(qstats, name) for name in _QUEUE_STAT_FIELDS},
        )

        # MSHR (insertion-ordered flat arrays).
        mshr = self._mshr
        mshr_lines = (_LL * mshr._capacity)()
        mshr_arrivals = (_DBL * mshr._capacity)()
        for k, (line, arrival) in enumerate(mshr._entries.items()):
            mshr_lines[k] = line
            mshr_arrivals[k] = arrival
        keep.extend((mshr_lines, mshr_arrivals))
        c.mshr_lines = ctypes.cast(mshr_lines, ctypes.POINTER(_LL))
        c.mshr_arrivals = ctypes.cast(mshr_arrivals, ctypes.POINTER(_DBL))
        c.mshr_n = len(mshr._entries)
        c.mshr_cap = mshr._capacity

        self._c = c

    # ------------------------------------------------------------------ #
    # Sync-out: C -> Python after every kernel call
    # ------------------------------------------------------------------ #

    def _sync_out(self) -> None:
        """Copy scalars and every stats object back to the Python side.

        Cache/queue/MSHR/table *contents* stay C-resident (internal
        contract, see the module docstring) — everything result
        aggregation, ``--verify`` lockstep or the CMP driver reads is
        synced exactly.
        """
        c = self._c
        self.cycle = c.cycle
        self._slot_credit = c.slot_credit
        self._last_slot_cycle = c.last_slot_cycle
        self._cycle_mark = c.cycle_mark
        self._prev_line = c.prev_line
        self.total_instructions = c.total_instructions
        self._visit_index = c.visit_index
        self._warmed = bool(c.warmed)

        stats = self.stats
        stats.instructions = c.instructions
        stats.cycles = c.st_cycles
        stats.exec_cycles = c.exec_cycles
        stats.fetch_stall_cycles = c.fetch_stall_cycles
        stats.data_stall_cycles = c.data_stall_cycles
        stats.l1i_fetches = c.l1i_fetches
        stats.l1i_misses = c.l1i_misses
        stats.l2i_demand_accesses = c.l2i_demand_accesses
        stats.l2i_demand_misses = c.l2i_demand_misses
        stats.data_accesses = c.data_accesses
        stats.l1d_misses = c.l1d_misses
        stats.l2d_accesses = c.l2d_accesses
        stats.l2d_misses = c.l2d_misses
        stats.l1i_breakdown._counts[:] = list(self._c_l1i_bd)
        stats.l2i_breakdown._counts[:] = list(self._c_l2i_bd)
        pf_stats = stats.prefetch
        for name in _PF_STAT_FIELDS:
            setattr(pf_stats, name, getattr(c, name))

        _sync_cache_stats(self.l1i, c.l1i)
        _sync_cache_stats(self.l1d, c.l1d)
        self._jit_system.sync_out()

        queue = self.queue
        queue.waiting = c.queue.waiting
        qstats = queue.stats
        for name in _QUEUE_STAT_FIELDS:
            setattr(qstats, name, getattr(c.queue, name))

        if c.pf_mode == 6:
            tstats = self.prefetcher.table.stats
            for name in _TABLE_STAT_FIELDS:
                setattr(tstats, name, getattr(c.table, name))

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """One visit per call — exact CMP interleaving, kernel body."""
        if not self._twin_ready():
            return super().step()
        c = self._c
        i = c.visit_index
        if i >= c.visit_count:
            self._finished = True
            c.finished = 1
            cycles = self.cycle - self._cycle_mark
            self.stats.cycles = cycles
            c.st_cycles = cycles
            return False
        self._c_started = True
        self._lib.repro_span(ctypes.byref(c), i + 1)
        self._sync_out()
        return True

    def run(self) -> CoreStats:
        """Run the whole trace inside the kernel."""
        if not self._twin_ready():
            return super().run()
        self._c_started = True
        self._lib.repro_run(ctypes.byref(self._c))
        self._sync_out()
        self._finished = True
        return self.stats

    @staticmethod
    def run_multicore(engines: List["JittedCoreEngine"]) -> bool:
        """Run a whole multi-core system inside one kernel call.

        Invoked by :meth:`repro.cmp.system.System.run` before its Python
        interleave loop.  Returns False (caller falls back to the exact
        Python loop) unless *every* engine is kernel-eligible: a mix of
        kernel-resident and Python-resident engines sharing one L2 would
        silently diverge, so ineligibility of any sibling flips the whole
        system to reference stepping.  Uniform system construction makes
        the mixed case practically unreachable, but the guard is load-
        bearing for custom per-core prefetcher factories.
        """
        ready = all(
            isinstance(engine, JittedCoreEngine) and engine._twin_ready()
            for engine in engines
        )
        if not ready or len(engines) > _MAX_CORES:
            for engine in engines:
                if isinstance(engine, JittedCoreEngine) and not engine._c_started:
                    engine._twin_ok = False
            return False
        cores = (ctypes.POINTER(_CCore) * len(engines))(
            *(ctypes.pointer(engine._c) for engine in engines)
        )
        for engine in engines:
            engine._c_started = True
        engines[0]._lib.repro_run_system(cores, len(engines))
        for engine in engines:
            engine._sync_out()
            engine._finished = True
        return True
