"""Small special-purpose containers used by the prefetch machinery."""

from __future__ import annotations

from collections import OrderedDict
from typing import List


class BoundedRecentSet:
    """A fixed-capacity set of the most recently added keys.

    This backs the paper's prefetch filter, which "keeps track of the most
    recent demand fetches and checks each prefetch prediction against this
    list" (§4.1).  Adding an existing key refreshes its recency; when the
    capacity is exceeded the least recently added key is evicted.
    """

    __slots__ = ("_capacity", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._entries: OrderedDict[int, None] = OrderedDict()

    def add(self, key: int) -> None:
        """Insert *key*, refreshing recency if already present."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
            return
        entries[key] = None
        if len(entries) > self._capacity:
            entries.popitem(last=False)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> int:
        return self._capacity

    def clear(self) -> None:
        self._entries.clear()

    def keys(self) -> List[int]:
        """Return the keys from least to most recently added."""
        return list(self._entries)
