"""Shared low-level helpers used across the simulator."""

from repro.util.containers import BoundedRecentSet
from repro.util.rng import SplitMix64, derive_seed
from repro.util.units import GB, KB, MB, format_size, parse_size
from repro.util.validation import check_positive, check_power_of_two, check_probability

__all__ = [
    "SplitMix64",
    "derive_seed",
    "KB",
    "MB",
    "GB",
    "parse_size",
    "format_size",
    "BoundedRecentSet",
    "check_positive",
    "check_power_of_two",
    "check_probability",
]
