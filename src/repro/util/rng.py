"""Deterministic, fast pseudo-random number generation.

Every stochastic component in the simulator (workload walkers, data-stream
generators, replacement tie-breaking) draws from an explicitly seeded
generator so that experiments are reproducible bit-for-bit.  We use
SplitMix64: it is tiny, fast in pure Python, has a full 2^64 period for
stream derivation, and — unlike sharing one ``random.Random`` — makes it
trivial to derive independent per-component streams from a single root seed.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

T = TypeVar("T")

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def derive_seed(root: int, *labels: object) -> int:
    """Derive a child seed from *root* and a sequence of labels.

    The labels are hashed into the seed so that, e.g., core 0's walker and
    core 1's walker get decorrelated streams from the same experiment seed::

        seed_core0 = derive_seed(experiment_seed, "walker", 0)
        seed_core1 = derive_seed(experiment_seed, "walker", 1)
    """
    state = (root ^ 0x6A09E667F3BCC909) & _MASK64
    for label in labels:
        for byte in repr(label).encode():
            state = ((state ^ byte) * 0x100000001B3) & _MASK64
        state = _mix(state)
    return state


def _mix(value: int) -> int:
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
    return value ^ (value >> 31)


class SplitMix64:
    """SplitMix64 generator with the small sampling surface we need.

    The interface intentionally mirrors the subset of ``random.Random`` the
    simulator uses (``random``, ``randrange``, ``choice``, weighted choice,
    a few distributions) so components never need the stdlib generator.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """Return the next raw 64-bit value."""
        self._state = (self._state + _GOLDEN) & _MASK64
        return _mix(self._state)

    def random(self) -> float:
        """Return a float uniformly distributed in [0, 1)."""
        return self.next_u64() / 18446744073709551616.0

    def randrange(self, bound: int) -> int:
        """Return an int uniformly distributed in [0, bound)."""
        if bound <= 0:
            raise ValueError(f"randrange bound must be positive, got {bound}")
        return self.next_u64() % bound

    def randint(self, low: int, high: int) -> int:
        """Return an int uniformly distributed in [low, high] inclusive."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        return low + self.randrange(high - low + 1)

    def choice(self, seq: Sequence[T]) -> T:
        """Return a uniformly chosen element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.randrange(len(seq))]

    def weighted_index(self, cumulative_weights: Sequence[float]) -> int:
        """Return an index sampled according to *cumulative_weights*.

        ``cumulative_weights`` must be a non-decreasing sequence whose last
        element is the total weight.  Sampling is a linear scan, which is
        faster than bisect for the short (<10 entries) weight vectors used
        by the workload walkers.
        """
        total = cumulative_weights[-1]
        point = self.random() * total
        for index, bound in enumerate(cumulative_weights):
            if point < bound:
                return index
        return len(cumulative_weights) - 1

    def geometric(self, mean: float) -> int:
        """Return a geometric variate (support >= 1) with the given mean.

        Used for run lengths such as loop trip counts; a mean of 1.0 always
        returns 1.
        """
        if mean < 1.0:
            raise ValueError(f"geometric mean must be >= 1, got {mean}")
        if mean == 1.0:
            return 1
        success = 1.0 / mean
        count = 1
        # Direct inversion would need log(); the loop is fine because means
        # used in practice are small (< 50).
        while self.random() > success:
            count += 1
            if count >= mean * 20:
                break
        return count

    def lognormal_int(self, median: int, sigma: float, low: int, high: int) -> int:
        """Return a clamped integer that is approximately log-normal.

        Implemented as ``median * 2**(sigma * z)`` with ``z`` from a cheap
        approximate standard normal (sum of uniforms), then clamped to
        ``[low, high]``.  Exactness of the distribution is unimportant; the
        generator only needs a heavy right tail for function sizes.
        """
        z = (
            self.random()
            + self.random()
            + self.random()
            + self.random()
            + self.random()
            + self.random()
            - 3.0
        ) / 1.0
        value = int(median * (2.0 ** (sigma * z)))
        if value < low:
            return low
        if value > high:
            return high
        return value

    def zipf_index(self, n: int, skew: float) -> int:
        """Return an index in [0, n) with an (approximate) Zipf distribution.

        Uses the standard approximate-inversion method for Zipf(skew) over a
        finite support, which is accurate enough for workload popularity
        modelling and, critically, O(1) per sample.
        """
        if n <= 0:
            raise ValueError(f"zipf support must be positive, got {n}")
        if n == 1:
            return 0
        if skew <= 0.0:
            return self.randrange(n)
        u = self.random()
        if skew == 1.0:
            # Harmonic inversion: rank ~ n**u.
            rank = n ** u
        else:
            one_minus = 1.0 - skew
            rank = ((n ** one_minus - 1.0) * u + 1.0) ** (1.0 / one_minus)
        index = int(rank) - 1
        if index < 0:
            return 0
        if index >= n:
            return n - 1
        return index

    def shuffle(self, items: list) -> None:
        """Fisher-Yates shuffle in place."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randrange(i + 1)
            items[i], items[j] = items[j], items[i]

    def spawn(self, *labels: object) -> "SplitMix64":
        """Return an independent child generator derived from this one."""
        return SplitMix64(derive_seed(self._state, *labels))
