"""Wall-clock access shim — the only sanctioned gateway to the host clock.

Simulation results must be bit-deterministic, so ``repro.lint`` rule R1
forbids ``time.time``, ``datetime.now`` and friends throughout ``src/repro``
and ``scripts/``.  Progress lines and log stamps still want real elapsed
seconds; they get them from here, and this module alone is allowlisted.
Nothing result-affecting may ever read the clock — keep this import out of
``repro.core``, ``repro.caches``, ``repro.prefetch``, ``repro.branch``,
``repro.cmp`` and ``repro.trace``.
"""

from __future__ import annotations

import time


def now() -> float:
    """Seconds since the epoch — for log stamps, never for results."""
    return time.time()


def perf_counter() -> float:
    """High-resolution monotonic counter — for measuring elapsed spans."""
    return time.perf_counter()


def monotonic() -> float:
    """Monotonic clock — never jumps with host clock adjustments."""
    return time.monotonic()


class Stopwatch:
    """Elapsed-seconds helper for progress reporting.

    Uses the monotonic high-resolution counter, so reported durations never
    jump with host clock adjustments.
    """

    __slots__ = ("_started",)

    def __init__(self) -> None:
        self._started = time.perf_counter()

    def restart(self) -> None:
        """Reset the reference point to now."""
        self._started = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds of wall-clock since construction or the last restart."""
        return time.perf_counter() - self._started
