"""Byte-size units and parsing helpers."""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

_SUFFIXES = {
    "B": 1,
    "KB": KB,
    "K": KB,
    "MB": MB,
    "M": MB,
    "GB": GB,
    "G": GB,
}


def parse_size(text: str) -> int:
    """Parse a human-readable byte size such as ``"32KB"`` or ``"2MB"``.

    Raises ``ValueError`` for unrecognised suffixes or non-numeric values.
    """
    stripped = text.strip().upper()
    for suffix in ("KB", "MB", "GB", "K", "M", "G", "B"):
        if stripped.endswith(suffix):
            number = stripped[: -len(suffix)].strip()
            if not number:
                raise ValueError(f"missing magnitude in size {text!r}")
            return int(float(number) * _SUFFIXES[suffix])
    return int(stripped)


def format_size(nbytes: int) -> str:
    """Format a byte count using the largest exact unit (``2MB``, ``32KB``)."""
    for suffix, magnitude in (("GB", GB), ("MB", MB), ("KB", KB)):
        if nbytes >= magnitude and nbytes % magnitude == 0:
            return f"{nbytes // magnitude}{suffix}"
    return f"{nbytes}B"
