"""Argument-validation helpers shared by configuration dataclasses."""

from __future__ import annotations


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless *value* is a positive number."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise ``ValueError`` unless *value* is a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a power of two, got {value}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless *value* lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value}")
