"""Branch target buffer — direct-mapped and tagless, as in the paper §5.

Being tagless, a BTB lookup always returns *some* target (whatever the
indexed entry last stored); aliasing across lines is part of the design
and exactly why a small BTB mispredicts heavily on multi-megabyte
commercial instruction footprints.
"""

from __future__ import annotations

from typing import Optional

from repro.util.validation import check_power_of_two


class BranchTargetBuffer:
    """Direct-mapped, tagless target store at line granularity."""

    __slots__ = ("entries", "_targets", "_mask")

    def __init__(self, entries: int = 1024) -> None:
        check_power_of_two("BTB entries", entries)
        self.entries = entries
        self._targets = [-1] * entries
        self._mask = entries - 1

    def predict(self, line: int) -> Optional[int]:
        """Predicted target line, or None if the entry was never trained."""
        target = self._targets[line & self._mask]
        return target if target >= 0 else None

    def update(self, line: int, target: int) -> None:
        self._targets[line & self._mask] = target

    def occupancy(self) -> int:
        return sum(1 for target in self._targets if target >= 0)

    def reset(self) -> None:
        self._targets = [-1] * self.entries
