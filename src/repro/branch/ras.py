"""Return address stack (16 entries in the paper's §5 core)."""

from __future__ import annotations

from typing import List, Optional


class ReturnAddressStack:
    """Bounded stack of return lines; overflow discards the oldest frame."""

    __slots__ = ("capacity", "_stack")

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._stack: List[int] = []

    def push(self, return_line: int) -> None:
        if len(self._stack) >= self.capacity:
            self._stack.pop(0)
        self._stack.append(return_line)

    def pop(self) -> Optional[int]:
        if self._stack:
            return self._stack.pop()
        return None

    def peek(self) -> Optional[int]:
        if self._stack:
            return self._stack[-1]
        return None

    def __len__(self) -> int:
        return len(self._stack)

    def reset(self) -> None:
        self._stack.clear()
