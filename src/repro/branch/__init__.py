"""Branch-prediction substrate (paper §5's front-end structures).

The paper's modeled core carries a 64K-entry gshare conditional-branch
predictor, a 1K-entry direct-mapped tagless BTB and a 16-entry return
address stack.  Our per-line timing model doesn't need them for the main
results (their cost is folded into ``base_cpi_overhead``), but they are
the substrate of the *execution-based* prefetchers of the paper's §2.2 —
fetch-directed prefetching [9] runs a branch predictor ahead of the fetch
unit.  This package implements the three structures at fetch-line
granularity plus the :class:`~repro.prefetch.fdp.FetchDirectedPrefetcher`
built on them, enabling the comparison the paper argues qualitatively:
commercial instruction footprints need impractically large predictor
state for execution-based prefetching to work.
"""

from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.ras import ReturnAddressStack

__all__ = ["GsharePredictor", "BranchTargetBuffer", "ReturnAddressStack"]
