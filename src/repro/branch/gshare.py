"""Gshare direction predictor [McFarling '93], at fetch-line granularity.

Predicts whether the fetch stream *leaves sequentially* (not taken) or
*transfers away* (taken) after a line.  The pattern-history table of 2-bit
saturating counters is indexed by (line index XOR global history).
"""

from __future__ import annotations

from repro.util.validation import check_power_of_two


class GsharePredictor:
    """2-bit-counter PHT indexed by line ^ global history."""

    __slots__ = ("entries", "history_bits", "_pht", "_history", "_mask", "_history_mask")

    def __init__(self, entries: int = 65536, history_bits: int = 12) -> None:
        check_power_of_two("gshare entries", entries)
        if not 0 <= history_bits <= 30:
            raise ValueError(f"history_bits must be in [0, 30], got {history_bits}")
        self.entries = entries
        self.history_bits = history_bits
        # Initialised weakly NOT-taken: at fetch-line granularity most
        # lines exit sequentially, so the untrained prior is sequential.
        self._pht = [1] * entries
        self._history = 0
        self._mask = entries - 1
        self._history_mask = (1 << history_bits) - 1

    def _index(self, line: int, history: int) -> int:
        return (line ^ history) & self._mask

    def predict(self, line: int, history: int = -1) -> bool:
        """True = taken (the stream will leave this line non-sequentially).

        Pass an explicit *history* to predict along a speculative path
        (run-ahead prefetching); -1 uses the architectural history.
        """
        if history < 0:
            history = self._history
        return self._pht[self._index(line, history)] >= 2

    def update(self, line: int, taken: bool) -> None:
        """Train with the resolved outcome and advance the history."""
        index = self._index(line, self._history)
        counter = self._pht[index]
        if taken:
            if counter < 3:
                self._pht[index] = counter + 1
        else:
            if counter > 0:
                self._pht[index] = counter - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._history_mask

    def speculate_history(self, history: int, taken: bool) -> int:
        """Return the history after a speculative outcome (run-ahead)."""
        return ((history << 1) | (1 if taken else 0)) & self._history_mask

    @property
    def history(self) -> int:
        return self._history

    def reset(self) -> None:
        self._pht = [1] * self.entries
        self._history = 0
