"""History-based target prefetcher baseline (Smith & Hsu [1], Hsu & Smith [5]).

The classic scheme the paper's §2.2 describes: a table remembers, for each
demand-fetched line, the next (non-sequential) line fetched after it.  On
each demand fetch the table is probed with the *current* line only — no
probe-ahead — which is precisely the timeliness limitation the paper's
discontinuity prefetcher fixes.  Included so experiments can quantify that
gap.

The table here is fully-associative with LRU replacement and a capacity
bound, which is *generous* to the baseline: its deficit in the results is
timeliness, not capacity.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.prefetch.base import PrefetchCandidate, Prefetcher


class TargetPrefetcher(Prefetcher):
    """Line-target history table probed with the current line."""

    # Probes (and LRU-refreshes) the table on every demand fetch and learns
    # every discontinuity, hit or miss — not transparent.
    hit_transparent = False

    def __init__(self, capacity: int = 8192, degree: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.capacity = capacity
        self.degree = degree
        self.name = "target"
        self._table: OrderedDict[int, int] = OrderedDict()

    def on_demand_fetch(self, line, was_miss, first_use_of_prefetch, kind):
        target = self._table.get(line)
        if target is None:
            return []
        self._table.move_to_end(line)
        return [
            PrefetchCandidate(target + extra, ("tgt", line))
            for extra in range(self.degree)
        ]

    def on_discontinuity(self, source_line, target_line, caused_miss):
        # The target table learns every non-sequential transition, not just
        # missing ones (the historical schemes recorded the fetch sequence).
        table = self._table
        if source_line in table:
            table[source_line] = target_line
            table.move_to_end(source_line)
            return
        table[source_line] = target_line
        if len(table) > self.capacity:
            table.popitem(last=False)

    def state_bytes(self) -> int:
        # Per entry: source tag + one target line address.
        return (self.capacity * (32 + 32)) // 8

    def reset(self):
        self._table.clear()
