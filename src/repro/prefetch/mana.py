"""MANA-style record-and-replay instruction prefetcher [Ansari et al. '21].

The follow-on family the ROADMAP names first: instead of learning *edges*
(discontinuity pairs) the prefetcher records whole **spatial regions** —
the footprint of cache lines the fetch stream touched inside an aligned
group of ``region_lines`` lines — and replays recorded regions ahead of
the stream.

Structures, adapted to this repo's line-granularity front end:

- a **stream address buffer (SAB)-style recorder** follows the demand
  fetch stream and accumulates the footprint bitmap of the region it is
  currently inside.  The first line fetched in a region is the region's
  **trigger**; when the stream leaves the region, the completed record
  ``(trigger, footprint, successor)`` is committed.
- the **record table** is set-associative (``table_entries`` total,
  ``assoc`` ways), keyed by trigger line, with a small saturating
  confidence counter per entry.  Committing a record also patches the
  *previous* record's successor pointer to the new trigger, chaining
  records in stream order (MANA's pointer chain).
- **replay**: on a tagged trigger (demand miss or first use of a
  prefetched line) the table is probed with the missing line; a hit
  replays the recorded footprint and follows successor pointers for up to
  ``replay_depth`` chained records, staying ahead of the fetch stream.

Replacement inside a set prefers the lowest-confidence entry (ties fall
to LRU age); :meth:`ManaPrefetcher.credit` reinforces entries whose
replayed lines were demand-used, mirroring the §4 eviction-counter idea.

The recorder trains on *every* demand fetch, so the scheme is not
``hit_transparent``: the vectorized engine backend degrades to reference
stepping (bit-identical) for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.prefetch.base import PrefetchCandidate, Prefetcher
from repro.util.validation import check_power_of_two

#: saturation value of the per-entry confidence counter (2 bits).
_CONFIDENCE_MAX = 3

#: confidence a freshly committed record starts with.
_CONFIDENCE_INIT = 1


@dataclass
class ManaStats:
    """Record-table management counters."""

    commits: int = 0
    allocations: int = 0
    evictions: int = 0
    probe_hits: int = 0
    replays: int = 0
    credits: int = 0

    def reset(self) -> None:
        self.commits = 0
        self.allocations = 0
        self.evictions = 0
        self.probe_hits = 0
        self.replays = 0
        self.credits = 0


class _Record:
    """One committed spatial-region record."""

    __slots__ = ("trigger", "footprint", "successor", "confidence")

    def __init__(self, trigger: int, footprint: int, successor: int) -> None:
        self.trigger = trigger
        self.footprint = footprint
        self.successor = successor  #: next record's trigger, or -1
        self.confidence = _CONFIDENCE_INIT


class ManaTable:
    """Set-associative trigger-keyed record store.

    Each set is a small list ordered LRU → MRU.  The replacement victim is
    the lowest-confidence record, ties broken by age, so records that keep
    producing useful replays outlive stray one-shot regions.
    """

    __slots__ = ("entries", "assoc", "stats", "_sets", "_set_mask")

    def __init__(self, entries: int = 4096, assoc: int = 4) -> None:
        check_power_of_two("table entries", entries)
        check_power_of_two("associativity", assoc)
        if assoc > entries:
            raise ValueError(
                f"associativity {assoc} exceeds table entries {entries}"
            )
        self.entries = entries
        self.assoc = assoc
        self.stats = ManaStats()
        n_sets = entries // assoc
        self._set_mask = n_sets - 1
        self._sets: List[List[_Record]] = [[] for _ in range(n_sets)]

    def _set_for(self, trigger: int) -> List[_Record]:
        return self._sets[trigger & self._set_mask]

    def lookup(self, trigger: int) -> Optional[_Record]:
        """Return the record for *trigger* (LRU-touching it), if any."""
        ways = self._set_for(trigger)
        for index, record in enumerate(ways):
            if record.trigger == trigger:
                if index != len(ways) - 1:
                    del ways[index]
                    ways.append(record)
                self.stats.probe_hits += 1
                return record
        return None

    def commit(self, trigger: int, footprint: int, successor: int) -> None:
        """Insert or refresh the record for one completed region."""
        self.stats.commits += 1
        ways = self._set_for(trigger)
        for index, record in enumerate(ways):
            if record.trigger == trigger:
                # Re-recorded region: adopt the fresh footprint/successor
                # (the stream's current behavior wins over history).
                record.footprint = footprint
                record.successor = successor
                if index != len(ways) - 1:
                    del ways[index]
                    ways.append(record)
                return
        if len(ways) >= self.assoc:
            victim_index = 0
            for index, record in enumerate(ways):
                if record.confidence < ways[victim_index].confidence:
                    victim_index = index
            del ways[victim_index]
            self.stats.evictions += 1
        ways.append(_Record(trigger, footprint, successor))
        self.stats.allocations += 1

    def credit(self, trigger: int) -> None:
        """Reinforce a record whose replay proved useful (no LRU touch)."""
        for record in self._set_for(trigger):
            if record.trigger == trigger:
                if record.confidence < _CONFIDENCE_MAX:
                    record.confidence += 1
                self.stats.credits += 1
                return

    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def reset(self) -> None:
        for ways in self._sets:
            ways.clear()
        self.stats.reset()


class ManaPrefetcher(Prefetcher):
    """Record/replay over spatial regions (SAB recorder + trigger table)."""

    # The recorder observes every demand fetch, hits included.
    hit_transparent = False

    def __init__(
        self,
        table_entries: int = 4096,
        assoc: int = 4,
        region_lines: int = 8,
        replay_depth: int = 3,
    ) -> None:
        check_power_of_two("region_lines", region_lines)
        if replay_depth < 1:
            raise ValueError(f"replay_depth must be >= 1, got {replay_depth}")
        self.table = ManaTable(table_entries, assoc)
        self.region_lines = region_lines
        self.replay_depth = replay_depth
        self.name = f"mana-{table_entries}"
        self._region_shift = region_lines.bit_length() - 1
        self._offset_mask = region_lines - 1
        # SAB recorder state: the region currently being recorded plus the
        # trigger of the previously committed record (successor linkage).
        self._rec_region = -1
        self._rec_trigger = -1
        self._rec_footprint = 0
        self._prev_trigger = -1

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def _record(self, line: int) -> None:
        region = line >> self._region_shift
        if region == self._rec_region:
            self._rec_footprint |= 1 << (line & self._offset_mask)
            return
        if self._rec_region >= 0:
            self.table.commit(self._rec_trigger, self._rec_footprint, line)
            if self._prev_trigger >= 0:
                previous = self.table.lookup(self._prev_trigger)
                if previous is not None and previous.successor != self._rec_trigger:
                    previous.successor = self._rec_trigger
            self._prev_trigger = self._rec_trigger
        self._rec_region = region
        self._rec_trigger = line
        self._rec_footprint = 1 << (line & self._offset_mask)

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #

    def _replay(self, trigger: int) -> List[PrefetchCandidate]:
        candidates: List[PrefetchCandidate] = []
        table = self.table
        shift = self._region_shift
        current = trigger
        for _ in range(self.replay_depth):
            record = table.lookup(current)
            if record is None:
                break
            table.stats.replays += 1
            base = (current >> shift) << shift
            provenance = ("mana", current)
            footprint = record.footprint
            offset = 0
            while footprint:
                if (footprint & 1) and base + offset != trigger:
                    candidates.append(PrefetchCandidate(base + offset, provenance))
                footprint >>= 1
                offset += 1
            current = record.successor
            if current < 0:
                break
        return candidates

    # ------------------------------------------------------------------ #
    # Prefetcher hooks
    # ------------------------------------------------------------------ #

    def on_demand_fetch(self, line, was_miss, first_use_of_prefetch, kind):
        self._record(line)
        if not (was_miss or first_use_of_prefetch):
            return []
        return self._replay(line)

    def credit(self, provenance):
        if provenance and provenance[0] == "mana":
            self.table.credit(provenance[1])

    def state_bytes(self) -> int:
        # Per record: trigger tag + footprint bitmap + successor pointer +
        # 2-bit confidence; the single SAB recorder register is negligible.
        per_entry_bits = 32 + self.region_lines + 32 + 2
        return (self.table.entries * per_entry_bits) // 8

    def reset(self):
        self.table.reset()
        self._rec_region = -1
        self._rec_trigger = -1
        self._rec_footprint = 0
        self._prev_trigger = -1
