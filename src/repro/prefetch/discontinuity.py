"""The discontinuity prefetcher — the paper's primary contribution (§4).

Components:

- :class:`DiscontinuityTable`: a direct-mapped table of (source line →
  target line) pairs with a 2-bit saturating *eviction counter* per entry.
  Management follows the paper exactly:

  1. **Allocation** — when a discontinuity transition causes an
     instruction-cache miss and the (source → target) pair is not in the
     table, it becomes an insertion candidate.  On insertion the counter is
     set to its upper saturated value.
  2. **Prediction** — the table is probed by the sequential prefetcher
     moving ahead of the demand stream: for a trigger at line L and
     prefetch-ahead distance N, probes are issued for L, L+1, …, L+N.  A
     hit issues a prefetch for the target *and the remainder of the
     prefetch-ahead distance past the target* (waiting for the prediction
     to be verified would be too late to cover an L2 miss).
  3. **Replacement** — an unrepresented discontinuity decrements the
     resident entry's counter; the entry is evicted only once the counter
     has reached zero, protecting useful entries from stray events.
     Counters are incremented when a prefetch issued from the entry proves
     useful.

- :class:`DiscontinuityPrefetcher`: the table paired with a next-N-line
  sequential prefetcher (paper default N=4; the ``2NL`` variant of Figure 9
  uses N=2), which covers sequential misses *and* short forward branches,
  so the table only needs to hold large discontinuities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.prefetch.base import PrefetchCandidate, Prefetcher
from repro.util.validation import check_power_of_two

_SEQ_PROVENANCE = ("seq",)

#: upper saturated value of the 2-bit eviction counter.
COUNTER_MAX = 3


@dataclass
class DiscontinuityTableStats:
    """Table-management event counters."""

    allocations: int = 0
    replacements: int = 0
    replacement_denied: int = 0
    target_updates: int = 0
    probe_hits: int = 0
    credits: int = 0

    def reset(self) -> None:
        self.allocations = 0
        self.replacements = 0
        self.replacement_denied = 0
        self.target_updates = 0
        self.probe_hits = 0
        self.credits = 0


class DiscontinuityTable:
    """Direct-mapped (source line → target line) discontinuity store.

    ``counter_max`` sets the eviction counter's saturation value (3 for the
    paper's 2-bit counter; 0 disables the thrash protection entirely —
    every unrepresented discontinuity immediately replaces the resident
    entry — which the eviction-counter ablation uses).
    """

    __slots__ = ("entries", "counter_max", "stats", "_mask", "_sources", "_targets", "_counters")

    def __init__(self, entries: int = 8192, counter_max: int = COUNTER_MAX) -> None:
        check_power_of_two("table entries", entries)
        if counter_max < 0:
            raise ValueError(f"counter_max must be >= 0, got {counter_max}")
        self.entries = entries
        self.counter_max = counter_max
        self.stats = DiscontinuityTableStats()
        self._mask = entries - 1
        self._sources: List[Optional[int]] = [None] * entries
        self._targets: List[int] = [0] * entries
        self._counters: List[int] = [0] * entries

    def index_of(self, source_line: int) -> int:
        """Direct-mapped index for a source line."""
        return source_line & self._mask

    def observe(self, source_line: int, target_line: int) -> None:
        """Record a discontinuity that caused an instruction-cache miss.

        Implements the allocation + replacement rules described in the
        module docstring.
        """
        index = source_line & self._mask
        resident = self._sources[index]
        if resident == source_line:
            if self._targets[index] == target_line:
                return  # already learned
            # Same source, different target: the paper keeps one target per
            # entry; treat the new target as an unrepresented discontinuity
            # competing for the entry.
            if self._counters[index] == 0:
                self._targets[index] = target_line
                self._counters[index] = self.counter_max
                self.stats.target_updates += 1
            else:
                self._counters[index] -= 1
            return
        if resident is None:
            self._sources[index] = source_line
            self._targets[index] = target_line
            self._counters[index] = self.counter_max
            self.stats.allocations += 1
            return
        if self._counters[index] == 0:
            self._sources[index] = source_line
            self._targets[index] = target_line
            self._counters[index] = self.counter_max
            self.stats.replacements += 1
        else:
            self._counters[index] -= 1
            self.stats.replacement_denied += 1

    def predict(self, source_line: int) -> Optional[int]:
        """Return the learned target for *source_line*, if any."""
        index = source_line & self._mask
        if self._sources[index] == source_line:
            self.stats.probe_hits += 1
            return self._targets[index]
        return None

    def credit(self, index: int, source_line: int) -> None:
        """Reinforce the entry that issued a useful prefetch."""
        if self._sources[index] == source_line:
            counter = self._counters[index]
            if counter < self.counter_max:
                self._counters[index] = counter + 1
            self.stats.credits += 1

    def entry(self, index: int) -> Tuple[Optional[int], int, int]:
        """Return (source, target, counter) at *index* (test/debug helper)."""
        return self._sources[index], self._targets[index], self._counters[index]

    def occupancy(self) -> int:
        """Number of valid entries."""
        return sum(1 for source in self._sources if source is not None)

    def reset(self) -> None:
        self._sources = [None] * self.entries
        self._targets = [0] * self.entries
        self._counters = [0] * self.entries
        self.stats.reset()


class DiscontinuityPrefetcher(Prefetcher):
    """Discontinuity table + next-N-line sequential prefetcher (§4)."""

    # Triggers only on miss / first-use, and allocates only for missing
    # discontinuities — inert on transparent hits.
    hit_transparent = True

    def __init__(
        self,
        table_entries: int = 8192,
        prefetch_ahead: int = 4,
        counter_max: int = COUNTER_MAX,
        probe_ahead: bool = True,
    ) -> None:
        """``probe_ahead=False`` restricts table probes to the current line
        only — the classic target-prefetcher timing of [1] that the paper
        argues arrives too late to cover L2 misses.  Used by the
        probe-ahead ablation; the paper's prefetcher always probes ahead."""
        if prefetch_ahead < 1:
            raise ValueError(f"prefetch_ahead must be >= 1, got {prefetch_ahead}")
        self.table = DiscontinuityTable(table_entries, counter_max=counter_max)
        self.prefetch_ahead = prefetch_ahead
        self.probe_ahead = probe_ahead
        self.name = f"discontinuity-{prefetch_ahead}nl"
        if prefetch_ahead == 4:
            self.name = "discontinuity"
        if not probe_ahead:
            self.name += "-noprobeahead"

    def on_demand_fetch(self, line, was_miss, first_use_of_prefetch, kind):
        if not (was_miss or first_use_of_prefetch):
            return []
        ahead = self.prefetch_ahead
        table = self.table
        candidates = [
            PrefetchCandidate(line + depth, _SEQ_PROVENANCE) for depth in range(1, ahead + 1)
        ]
        # Probe the table with the current line and every line in the
        # prefetch-ahead window (paper: "probed using cache line addresses
        # up to a defined prefetch-ahead distance").
        probe_window = ahead if self.probe_ahead else 0
        for offset in range(0, probe_window + 1):
            probe_line = line + offset
            target = table.predict(probe_line)
            if target is None:
                continue
            provenance = ("disc", table.index_of(probe_line), probe_line)
            remainder = ahead - offset
            for extra in range(0, remainder + 1):
                candidates.append(PrefetchCandidate(target + extra, provenance))
        return candidates

    def on_discontinuity(self, source_line, target_line, caused_miss):
        # Allocation condition (§4): the transition resulted in an
        # instruction-cache miss.
        if caused_miss:
            self.table.observe(source_line, target_line)

    def credit(self, provenance):
        if provenance and provenance[0] == "disc":
            _, index, source_line = provenance
            self.table.credit(index, source_line)

    def state_bytes(self) -> int:
        # Per entry: source tag + target + the 2-bit eviction counter.
        return (self.table.entries * (32 + 32 + 2)) // 8

    def reset(self):
        self.table.reset()
