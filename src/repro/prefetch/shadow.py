"""FTQ-driven fetch-directed prefetching with shadow-branch predecode
[Pepi et al. '24, on top of Calder/Reinman/Austin '99].

Plain fetch-directed prefetching (:mod:`repro.prefetch.fdp`) follows
*one* predicted path: a branch the gshare predicts not-taken contributes
nothing, even when the fetch unit already knows its target.  The
shadow-branch observation is that fetched cache lines carry decodable
branches the predictor has not followed (yet) — "shadow" branches — and a
cheap predecode of each line entering the fetch target queue (FTQ) can
expose their targets for prefetching.

At this repo's line granularity the predecoder is emulated with a
**shadow target buffer (STB)**: a set-associative line → target store
trained on *every* observed fetch-stream discontinuity, hit or miss
(once a line has been fetched, the branch targets encoded in it are
architecturally visible — unlike the run-ahead BTB, which only helps
along the *predicted-taken* path).  Run-ahead then works in two stages:

1. the inherited gshare/BTB/RAS walk fills a bounded **FTQ** with the
   predicted fetch lines;
2. draining the FTQ, every line is prefetched and *predecoded*: if the
   walk left the line sequentially (predicted not-taken) but the STB
   knows a target for it, the shadow target and its next
   ``shadow_degree - 1`` lines are enqueued too, recovering coverage
   where the direction predictor decays on large footprints.

Training touches predictor state on every fetch (inherited from the fdp
base), so the scheme is not ``hit_transparent``; the vectorized backend
degrades to reference stepping (bit-identical) for it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.prefetch.base import PrefetchCandidate
from repro.prefetch.fdp import FetchDirectedPrefetcher
from repro.util.validation import check_power_of_two

_FDP_PROVENANCE = ("fdp",)

#: saturation value of the per-entry STB confidence counter (2 bits).
_CONFIDENCE_MAX = 3


class _ShadowEntry:
    """One predecoded branch target (line-granularity)."""

    __slots__ = ("line", "target", "confidence")

    def __init__(self, line: int, target: int) -> None:
        self.line = line
        self.target = target
        self.confidence = 1


class ShadowTargetBuffer:
    """Set-associative line → branch-target store (the predecode proxy)."""

    __slots__ = ("entries", "assoc", "_sets", "_set_mask")

    def __init__(self, entries: int = 2048, assoc: int = 4) -> None:
        check_power_of_two("shadow entries", entries)
        check_power_of_two("associativity", assoc)
        if assoc > entries:
            raise ValueError(f"associativity {assoc} exceeds entries {entries}")
        self.entries = entries
        self.assoc = assoc
        n_sets = entries // assoc
        self._set_mask = n_sets - 1
        self._sets: List[List[_ShadowEntry]] = [[] for _ in range(n_sets)]

    def _set_for(self, line: int) -> List[_ShadowEntry]:
        return self._sets[line & self._set_mask]

    def lookup(self, line: int) -> Optional[int]:
        """Known branch target leaving *line*, if any (no LRU touch: a
        predecode probe is not a reuse signal)."""
        for entry in self._set_for(line):
            if entry.line == line:
                return entry.target
        return None

    def observe(self, line: int, target: int) -> None:
        """Record a decoded (source line → target) branch edge."""
        ways = self._set_for(line)
        for index, entry in enumerate(ways):
            if entry.line == line:
                entry.target = target
                if index != len(ways) - 1:
                    del ways[index]
                    ways.append(entry)
                return
        if len(ways) >= self.assoc:
            victim_index = 0
            for index, entry in enumerate(ways):
                if entry.confidence < ways[victim_index].confidence:
                    victim_index = index
            del ways[victim_index]
        ways.append(_ShadowEntry(line, target))

    def credit(self, line: int) -> None:
        """A shadow prefetch from *line* proved useful."""
        for entry in self._set_for(line):
            if entry.line == line:
                if entry.confidence < _CONFIDENCE_MAX:
                    entry.confidence += 1
                return

    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def reset(self) -> None:
        for ways in self._sets:
            ways.clear()


class ShadowBranchPrefetcher(FetchDirectedPrefetcher):
    """FDP run-ahead + FTQ predecode of shadow-branch targets."""

    def __init__(
        self,
        btb_entries: int = 1024,
        gshare_entries: int = 65536,
        ras_entries: int = 16,
        lookahead: int = 8,
        history_bits: int = 10,
        ftq_entries: int = 16,
        shadow_entries: int = 2048,
        shadow_assoc: int = 4,
        shadow_degree: int = 2,
    ) -> None:
        if ftq_entries < 1:
            raise ValueError(f"ftq_entries must be >= 1, got {ftq_entries}")
        if shadow_degree < 1:
            raise ValueError(f"shadow_degree must be >= 1, got {shadow_degree}")
        super().__init__(
            btb_entries=btb_entries,
            gshare_entries=gshare_entries,
            ras_entries=ras_entries,
            lookahead=lookahead,
            history_bits=history_bits,
        )
        self.stb = ShadowTargetBuffer(shadow_entries, shadow_assoc)
        self.ftq_entries = ftq_entries
        self.shadow_degree = shadow_degree
        self.name = f"shadow-{shadow_entries}stb"
        #: shadow targets discovered by predecode across all run-aheads.
        self.shadow_discoveries = 0

    # ------------------------------------------------------------------ #
    # Predecode training
    # ------------------------------------------------------------------ #

    def on_discontinuity(self, source_line, target_line, caused_miss):
        # Every non-sequential transition decodes a branch in source_line;
        # the predecoder would have seen it as soon as the line was
        # fetched, so the STB learns it regardless of hit/miss.
        self.stb.observe(source_line, target_line)

    # ------------------------------------------------------------------ #
    # FTQ run-ahead with predecode
    # ------------------------------------------------------------------ #

    def _run_ahead(self, line: int) -> List[PrefetchCandidate]:
        """Fill the FTQ along the predicted path, then drain + predecode."""
        gshare = self.gshare
        btb = self.btb
        current = line
        history = gshare.history
        ras_copy = list(self.ras._stack)
        # Stage 1: the inherited predicted-path walk, as (line, left_seq)
        # FTQ records — left_seq marks lines the walk exited sequentially
        # (predicted not-taken), the only place a shadow branch can hide.
        ftq: List[List[int]] = []
        steps = min(self.lookahead, self.ftq_entries)
        for _ in range(steps):
            taken = gshare.predict(current, history)
            history = gshare.speculate_history(history, taken)
            if ftq:
                ftq[-1][1] = not taken
            if taken:
                target = btb.predict(current)
                if target is None:
                    break
                if ras_copy and target == current + 1:
                    target = ras_copy.pop()
                current = target
            else:
                current = current + 1
            ftq.append([current, True])

        # Stage 2: drain the FTQ; predecode each sequentially-exited line.
        candidates: List[PrefetchCandidate] = []
        stb = self.stb
        degree = self.shadow_degree
        for qline, left_seq in ftq:
            candidates.append(PrefetchCandidate(qline, _FDP_PROVENANCE))
            if not left_seq:
                continue
            target = stb.lookup(qline)
            if target is None or target == qline + 1:
                continue
            self.shadow_discoveries += 1
            provenance = ("shadow", qline)
            for extra in range(degree):
                candidates.append(PrefetchCandidate(target + extra, provenance))
        return candidates

    def credit(self, provenance):
        if provenance and provenance[0] == "shadow":
            self.stb.credit(provenance[1])

    def state_bytes(self) -> int:
        # FDP predictor state + STB (tag + target + 2-bit confidence) +
        # the FTQ's line-address slots.
        base = super().state_bytes()
        stb_bits = self.stb.entries * (32 + 32 + 2)
        ftq_bits = self.ftq_entries * 32
        return base + (stb_bits + ftq_bits) // 8

    def reset(self):
        super().reset()
        self.stb.reset()
        self.shadow_discoveries = 0
