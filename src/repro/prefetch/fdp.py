"""Fetch-directed (execution-based) prefetching [Calder/Reinman/Austin '99].

The §2.2 alternative the paper dismisses for commercial workloads: run a
branch predictor *ahead* of the fetch unit and prefetch along the
predicted path.  The paper's argument: commercial working sets are huge
and basic blocks small, so the predictor state needed for useful lookahead
is impractical ("a huge basic block predictor is required").

This implementation works at fetch-line granularity on the
:mod:`repro.branch` substrate:

- the **gshare** predictor decides whether the stream leaves each line
  non-sequentially;
- the **BTB** supplies the non-sequential target;
- the **RAS** supplies return targets (call/return transition kinds train
  it);
- on each tagged trigger, the prefetcher *runs ahead*: starting from the
  current line it follows the predicted path for ``lookahead`` lines,
  prefetching every line it visits.

With paper-sized tables (1K-entry tagless BTB) the predicted path decays
quickly on multi-MB footprints; growing the BTB toward impractical sizes
recovers coverage — the ``comparison-execution-based``
experiment (``repro.eval.catalog.comparisons``) quantifies the paper's
qualitative claim.
"""

from __future__ import annotations

from typing import List

from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.ras import ReturnAddressStack
from repro.isa.kinds import TransitionKind
from repro.prefetch.base import PrefetchCandidate, Prefetcher

_CALL = int(TransitionKind.CALL)
_JUMP = int(TransitionKind.JUMP)
_RETURN = int(TransitionKind.RETURN)
_SEQ = int(TransitionKind.SEQUENTIAL)
_NT = int(TransitionKind.COND_NOT_TAKEN)

_FDP_PROVENANCE = ("fdp",)


class FetchDirectedPrefetcher(Prefetcher):
    """Branch-predictor-directed run-ahead prefetcher."""

    def __init__(
        self,
        btb_entries: int = 1024,
        gshare_entries: int = 65536,
        ras_entries: int = 16,
        lookahead: int = 8,
        history_bits: int = 10,
    ) -> None:
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        self.gshare = GsharePredictor(gshare_entries, history_bits=history_bits)
        self.btb = BranchTargetBuffer(btb_entries)
        self.ras = ReturnAddressStack(ras_entries)
        self.lookahead = lookahead
        self.name = f"fdp-{btb_entries}btb"
        self._prev_line = -1

    # ------------------------------------------------------------------ #
    # Training: observe the actual fetch stream
    # ------------------------------------------------------------------ #

    def on_demand_fetch(self, line, was_miss, first_use_of_prefetch, kind):
        prev = self._prev_line
        self._prev_line = line
        if prev >= 0:
            taken = line != prev + 1
            self.gshare.update(prev, taken)
            if taken:
                self.btb.update(prev, line)
            if kind == _CALL or kind == _JUMP:
                # A call transition: the return will resume after the call
                # site (approximated at line granularity as prev + 1).
                self.ras.push(prev + 1)
            elif kind == _RETURN:
                self.ras.pop()

        if not (was_miss or first_use_of_prefetch):
            return []
        return self._run_ahead(line)

    def _run_ahead(self, line: int) -> List[PrefetchCandidate]:
        """Walk the predicted path for ``lookahead`` lines."""
        candidates: List[PrefetchCandidate] = []
        gshare = self.gshare
        btb = self.btb
        current = line
        history = gshare.history
        # Speculative RAS copy so run-ahead pops don't corrupt training
        # state (hardware checkpoints the RAS the same way).
        ras_copy = list(self.ras._stack)
        for _ in range(self.lookahead):
            taken = gshare.predict(current, history)
            history = gshare.speculate_history(history, taken)
            if taken:
                target = btb.predict(current)
                if target is None:
                    # No target knowledge: the predicted path ends.
                    break
                if ras_copy and target == current + 1:
                    # Heuristic: a stale BTB fall-through with a pending
                    # return frame resumes at the return address.
                    target = ras_copy.pop()
                if target == current:
                    # Tagless-BTB aliasing can predict a line as its own
                    # target; the walk would pin here emitting the same
                    # line for the rest of the lookahead.  End the path.
                    break
                current = target
            else:
                current = current + 1
            candidates.append(PrefetchCandidate(current, _FDP_PROVENANCE))
        return candidates

    def state_bytes(self) -> int:
        # Tagless BTB targets + 2-bit gshare counters + the RAS frames.
        bits = (
            self.btb.entries * 32
            + self.gshare.entries * 2
            + self.ras.capacity * 32
        )
        return bits // 8

    def reset(self):
        self.gshare.reset()
        self.btb.reset()
        self.ras.reset()
        self._prev_line = -1
