"""Markov (multi-target) instruction prefetcher [Joseph & Grunwald '99].

The history-based alternative the paper's §4 design argument is aimed at:
where the discontinuity table stores *one* target per source line ("for
the majority of discontinuities, for any one start address there is just
one associated target"), a Markov predictor retains up to *k* successor
lines per entry, each with a frequency counter, and prefetches the most
likely successors.

Implemented faithfully enough for the size/benefit comparison the paper
implies:

- set-associative table keyed by source line, LRU replacement;
- per-entry successor list (max ``targets_per_entry``), frequency-ordered;
- on a probe, the top ``fanout`` successors are prefetched;
- like the paper's prefetcher, it is paired with a next-N-line sequential
  prefetcher and probed across the prefetch-ahead window, so the
  comparison isolates exactly the single- vs multi-target choice.

Storage cost per entry is ``targets_per_entry`` targets + counters versus
the discontinuity table's single target + 2-bit counter — the hardware
argument for the paper's design shows up as equal-storage comparisons
(e.g. a 2-target Markov table of N entries vs a discontinuity table of
2N entries).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Tuple

from repro.prefetch.base import PrefetchCandidate, Prefetcher

_SEQ_PROVENANCE = ("seq",)


@dataclass
class MarkovStats:
    """Table-management counters."""

    allocations: int = 0
    evictions: int = 0
    successor_updates: int = 0
    probe_hits: int = 0

    def reset(self) -> None:
        self.allocations = 0
        self.evictions = 0
        self.successor_updates = 0
        self.probe_hits = 0


class _Entry:
    """Successor list of one source line (frequency-ordered)."""

    __slots__ = ("successors",)

    def __init__(self) -> None:
        # list of [target_line, count]; kept sorted by count descending.
        self.successors: List[List[int]] = []

    def _canonicalize(self) -> None:
        # Canonical order: count descending, target ascending on ties —
        # so ``top`` never depends on insertion history.
        self.successors.sort(key=lambda s: (-s[1], s[0]))

    def observe(self, target: int, max_targets: int) -> None:
        for successor in self.successors:
            if successor[0] == target:
                successor[1] += 1
                self._canonicalize()
                return
        if len(self.successors) < max_targets:
            self.successors.append([target, 1])
            self._canonicalize()
            return
        # Replace the least-frequent successor (decay-style: halve the
        # victim's count first so stale targets eventually lose).
        victim = self.successors[-1]
        victim[1] //= 2
        if victim[1] == 0:
            self.successors[-1] = [target, 1]
            self._canonicalize()

    def top(self, fanout: int) -> List[int]:
        return [successor[0] for successor in self.successors[:fanout]]


class MarkovTable:
    """Fully-associative-within-capacity successor table with LRU."""

    __slots__ = ("capacity", "targets_per_entry", "stats", "_table")

    def __init__(self, capacity: int = 4096, targets_per_entry: int = 2) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if targets_per_entry < 1:
            raise ValueError(f"targets_per_entry must be >= 1, got {targets_per_entry}")
        self.capacity = capacity
        self.targets_per_entry = targets_per_entry
        self.stats = MarkovStats()
        self._table: OrderedDict[int, _Entry] = OrderedDict()

    def observe(self, source_line: int, target_line: int) -> None:
        entry = self._table.get(source_line)
        if entry is None:
            entry = _Entry()
            self._table[source_line] = entry
            self.stats.allocations += 1
            if len(self._table) > self.capacity:
                self._table.popitem(last=False)
                self.stats.evictions += 1
        else:
            self._table.move_to_end(source_line)
        entry.observe(target_line, self.targets_per_entry)
        self.stats.successor_updates += 1

    def predict(self, source_line: int, fanout: int) -> List[int]:
        entry = self._table.get(source_line)
        if entry is None:
            return []
        self._table.move_to_end(source_line)
        self.stats.probe_hits += 1
        return entry.top(fanout)

    def occupancy(self) -> int:
        return len(self._table)

    def entry_successors(self, source_line: int) -> List[Tuple[int, int]]:
        """(target, count) pairs of an entry — test/debug helper."""
        entry = self._table.get(source_line)
        if entry is None:
            return []
        return [(successor[0], successor[1]) for successor in entry.successors]

    def reset(self) -> None:
        self._table.clear()
        self.stats.reset()


class MarkovPrefetcher(Prefetcher):
    """Markov table + next-N-line sequential prefetcher.

    Drives the same trigger/probe-ahead protocol as the discontinuity
    prefetcher so experiments isolate the table design.
    """

    hit_transparent = True

    def __init__(
        self,
        capacity: int = 4096,
        targets_per_entry: int = 2,
        fanout: int = 2,
        prefetch_ahead: int = 4,
    ) -> None:
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        if prefetch_ahead < 1:
            raise ValueError(f"prefetch_ahead must be >= 1, got {prefetch_ahead}")
        self.table = MarkovTable(capacity, targets_per_entry)
        self.fanout = fanout
        self.prefetch_ahead = prefetch_ahead
        self.name = f"markov-{targets_per_entry}t"

    def on_demand_fetch(self, line, was_miss, first_use_of_prefetch, kind):
        if not (was_miss or first_use_of_prefetch):
            return []
        ahead = self.prefetch_ahead
        candidates = [
            PrefetchCandidate(line + depth, _SEQ_PROVENANCE) for depth in range(1, ahead + 1)
        ]
        for offset in range(0, ahead + 1):
            probe_line = line + offset
            targets = self.table.predict(probe_line, self.fanout)
            if not targets:
                continue
            remainder = ahead - offset
            provenance = ("markov", probe_line)
            for target in targets:
                for extra in range(0, remainder + 1):
                    candidates.append(PrefetchCandidate(target + extra, provenance))
        return candidates

    def on_discontinuity(self, source_line, target_line, caused_miss):
        if caused_miss:
            self.table.observe(source_line, target_line)

    def state_bytes(self) -> int:
        # Per entry: source tag plus (target + 8-bit frequency counter)
        # for each successor slot — the multi-target storage cost the
        # paper's single-target argument is about.
        per_entry_bits = 32 + self.table.targets_per_entry * (32 + 8)
        return (self.table.capacity * per_entry_bits) // 8

    def reset(self):
        self.table.reset()
