"""Storage-budget matching for cross-family prefetcher comparisons.

The paper's comparisons (§2.2, §5) are only meaningful at *matched
hardware cost*: a discontinuity table entry is 66 bits while a
fetch-directed prefetcher pays for a BTB, a gshare array and a RAS.  This
module derives, for each prefetcher family, the largest power-of-two
sizing whose :meth:`~repro.prefetch.base.Prefetcher.state_bytes` fits a
given byte budget — the ``comparison-budget-matched`` experiment sweeps
every family at the same budgets.

Accounting convention (shared with each family's ``state_bytes``):
32-bit line addresses/tags/targets, counters at their declared widths,
computed in bits and floored to bytes.  Families whose state is a couple
of registers (the sequential family) report 0 bytes and accept any
budget unchanged.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.prefetch.registry import create_prefetcher

#: For each family: the power-of-two knob that is grown to fill the
#: budget, the minimum sizing tried, and the fixed override template
#: (``{}`` placeholders are filled with the knob value).  Families not
#: listed are (near-)stateless and take no overrides.
_BUDGET_KNOBS: Dict[str, Tuple[str, int]] = {
    "target": ("table_entries", 64),
    "discontinuity": ("table_entries", 64),
    "markov": ("table_entries", 64),
    "fdp": ("btb_entries", 64),
    "mana": ("table_entries", 64),
    "shadow": ("btb_entries", 64),
}

#: gshare PHT entries per BTB entry for the predictor-directed families
#: (the 1K-BTB / 64K-PHT ratio of the fdp default configuration).
GSHARE_PER_BTB = 64

#: shadow-target-buffer entries per BTB entry for the shadow family
#: (the 1K-BTB / 2K-STB ratio of the shadow default configuration).
SHADOW_PER_BTB = 2

_MAX_KNOB = 1 << 24  # safety bound for the doubling search


def _overrides_for(name: str, knob_value: int) -> Dict[str, int]:
    """Expand the single swept knob into the family's full override set."""
    knob, _ = _BUDGET_KNOBS[name]
    overrides = {knob: knob_value}
    if name in ("fdp", "shadow"):
        overrides["gshare_entries"] = knob_value * GSHARE_PER_BTB
    if name == "shadow":
        overrides["shadow_entries"] = knob_value * SHADOW_PER_BTB
    return overrides


def matched_overrides(name: str, budget_bytes: int) -> Dict[str, int]:
    """Largest power-of-two sizing of family *name* within *budget_bytes*.

    Returns the ``prefetcher_overrides`` dict to pass through
    :class:`~repro.eval.runspec.RunSpec`; empty for families with no
    swept storage knob.  Raises :class:`ValueError` when even the
    minimum sizing exceeds the budget.
    """
    if budget_bytes < 0:
        raise ValueError(f"budget_bytes must be >= 0, got {budget_bytes}")
    if name not in _BUDGET_KNOBS:
        return {}
    _, minimum = _BUDGET_KNOBS[name]
    best: Dict[str, int] = {}
    knob_value = minimum
    while knob_value <= _MAX_KNOB:
        overrides = _overrides_for(name, knob_value)
        if create_prefetcher(name, **overrides).state_bytes() > budget_bytes:
            break
        best = overrides
        knob_value *= 2
    if not best:
        raise ValueError(
            f"{name!r} does not fit a {budget_bytes}-byte budget even at "
            f"its minimum sizing ({minimum} entries)"
        )
    return best


def matched_state_bytes(name: str, budget_bytes: int) -> int:
    """Actual state bytes of the budget-matched sizing (for reporting)."""
    overrides = matched_overrides(name, budget_bytes)
    return create_prefetcher(name, **overrides).state_bytes()
