"""Prefetcher interface.

The front-end engine drives prefetchers through three hooks:

- :meth:`Prefetcher.on_demand_fetch` — called once per demand line fetch
  with the hit/miss outcome and whether this access is the *first use of a
  prefetched line* (the "tagged" trigger of Smith's taxonomy).  Returns the
  prefetch candidates to enqueue.
- :meth:`Prefetcher.on_discontinuity` — called when the fetch stream
  performed a non-sequential line transition; ``caused_miss`` says whether
  the target line missed (the paper's discontinuity-table allocation
  condition).
- :meth:`Prefetcher.credit` — called when a prefetched line is consumed by
  a demand fetch, carrying the candidate's provenance token so table-based
  schemes can reinforce the entry that predicted it (the 2-bit eviction
  counter increment of §4).
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple


class PrefetchCandidate(NamedTuple):
    """A prefetch request produced by a prefetcher.

    Attributes:
        line: target cache-line index.
        provenance: opaque token identifying the predictor component and
            table entry that produced the candidate; handed back via
            :meth:`Prefetcher.credit` when the line proves useful.
    """

    line: int
    provenance: Optional[Tuple] = None


class Prefetcher:
    """Base class; concrete schemes override the hooks they care about."""

    #: short identifier used in registries and result tables.
    name = "base"

    #: True iff the scheme is provably inert on *transparent* visits — a
    #: demand fetch that hit an unprefetched L1I line.  Concretely, the
    #: class guarantees all three of:
    #:
    #: 1. ``on_demand_fetch(line, False, False, kind)`` returns ``[]`` and
    #:    mutates no internal state;
    #: 2. ``on_discontinuity(src, dst, caused_miss=False)`` mutates no
    #:    internal state;
    #: 3. ``consume_overhead_cycles()`` always returns ``0.0``.
    #:
    #: The vectorized engine backend relies on this contract to skip the
    #: prefetcher hooks entirely while batch-processing L1I-hit visits
    #: (``repro.core.vectorized``); schemes that train, probe, or accrue
    #: overhead on every fetch must leave it False, which disables
    #: batching but stays bit-identical.
    hit_transparent = False

    def on_demand_fetch(
        self,
        line: int,
        was_miss: bool,
        first_use_of_prefetch: bool,
        kind: int,
    ) -> List[PrefetchCandidate]:
        """React to a demand fetch of *line*; return candidates to enqueue."""
        return []

    def on_discontinuity(self, source_line: int, target_line: int, caused_miss: bool) -> None:
        """Observe a non-sequential fetch-stream transition."""

    def credit(self, provenance: Tuple) -> None:
        """A prefetched line with this provenance was demand-used."""

    def state_bytes(self) -> int:
        """Bytes of prediction state this configured instance models.

        The hardware-storage accounting used by the budget-matched family
        comparison (:mod:`repro.prefetch.budget`): table tags, targets and
        counters, under the repo-wide convention of 32-bit line addresses
        and exact counter widths.  Stateless schemes (the sequential
        family needs only a couple of registers) report 0.
        """
        return 0

    def consume_overhead_cycles(self) -> float:
        """Return (and reset) execution-cycle overhead accrued since the
        last call.

        Hardware prefetchers are free; software prefetching executes real
        instructions, and :class:`repro.swpf.SoftwarePrefetcher` reports
        their cost here so the engine can charge it to the core's clock.
        """
        return 0.0

    def reset(self) -> None:
        """Clear learned state (tables); used between warm-up phases only
        when an experiment explicitly wants cold predictors."""


class NullPrefetcher(Prefetcher):
    """No prefetching — the paper's baseline configuration."""

    name = "none"
    hit_transparent = True
