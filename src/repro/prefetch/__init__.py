"""Hardware instruction prefetchers.

Implemented schemes (paper §2 baselines + §4 contribution):

- :class:`NullPrefetcher` — no prefetching (the paper's baseline).
- :class:`NextLineAlways` / :class:`NextLineOnMiss` / :class:`NextLineTagged`
  — the classic sequential single-line family [Smith '78/'82].
- :class:`NextNLineTagged` — prefetch the next N lines on a tagged trigger.
- :class:`LookaheadN` — prefetch only the Nth line ahead [Han et al. '97].
- :class:`TargetPrefetcher` — history-based (line → next line) predictor
  [Smith & Hsu '92], probed with the current line only.
- :class:`DiscontinuityPrefetcher` — the paper's contribution: a
  direct-mapped table of fetch-stream discontinuities probed up to the
  prefetch-ahead distance *ahead* of the demand stream, paired with a
  next-N-line sequential prefetcher.

All schemes speak the same interface (:class:`Prefetcher`), produce
:class:`PrefetchCandidate` s, and are filtered through the paper's §4.1
:class:`PrefetchQueue` before touching the cache tags.
"""

from repro.prefetch.base import NullPrefetcher, PrefetchCandidate, Prefetcher
from repro.prefetch.discontinuity import DiscontinuityPrefetcher, DiscontinuityTable
from repro.prefetch.fdp import FetchDirectedPrefetcher
from repro.prefetch.markov import MarkovPrefetcher, MarkovTable
from repro.prefetch.queue import PrefetchQueue, QueueEntry, QueueState
from repro.prefetch.registry import (
    PREFETCHER_NAMES,
    create_prefetcher,
    prefetcher_display_name,
)
from repro.prefetch.sequential import (
    LookaheadN,
    NextLineAlways,
    NextLineOnMiss,
    NextLineTagged,
    NextNLineTagged,
)
from repro.prefetch.target import TargetPrefetcher

__all__ = [
    "PrefetchCandidate",
    "Prefetcher",
    "NullPrefetcher",
    "NextLineAlways",
    "NextLineOnMiss",
    "NextLineTagged",
    "NextNLineTagged",
    "LookaheadN",
    "TargetPrefetcher",
    "MarkovPrefetcher",
    "MarkovTable",
    "FetchDirectedPrefetcher",
    "DiscontinuityTable",
    "DiscontinuityPrefetcher",
    "PrefetchQueue",
    "QueueEntry",
    "QueueState",
    "PREFETCHER_NAMES",
    "create_prefetcher",
    "prefetcher_display_name",
]
