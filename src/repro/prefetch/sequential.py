"""The sequential prefetcher family (paper §2.1).

All variants differ only in *when* they trigger and *how far* they reach:

====================  ======================================  ============
Scheme                Trigger                                 Issues
====================  ======================================  ============
next-line always      every demand fetch                      L+1
next-line on miss     demand miss                             L+1
next-line tagged      demand miss or first use of a           L+1
                      prefetched line
next-N-line tagged    tagged trigger                          L+1 .. L+N
lookahead-N           tagged trigger                          L+N only
====================  ======================================  ============

The tagged trigger [Smith '82] is what lets a single initial miss start a
self-sustaining prefetch run: each prefetched line, on first use, triggers
the next prefetch.
"""

from __future__ import annotations

from repro.prefetch.base import PrefetchCandidate, Prefetcher

_SEQ_PROVENANCE = ("seq",)


class NextLineAlways(Prefetcher):
    """Prefetch L+1 on every demand fetch."""

    name = "next-line-always"
    # Emits a candidate on *every* fetch, hits included — not transparent.
    hit_transparent = False

    def on_demand_fetch(self, line, was_miss, first_use_of_prefetch, kind):
        return [PrefetchCandidate(line + 1, _SEQ_PROVENANCE)]


class NextLineOnMiss(Prefetcher):
    """Prefetch L+1 only when the demand fetch of L missed."""

    name = "next-line-on-miss"
    hit_transparent = True

    def on_demand_fetch(self, line, was_miss, first_use_of_prefetch, kind):
        if was_miss:
            return [PrefetchCandidate(line + 1, _SEQ_PROVENANCE)]
        return []


class NextLineTagged(Prefetcher):
    """Prefetch L+1 on a miss or on first use of a prefetched line."""

    name = "next-line-tagged"
    hit_transparent = True

    def on_demand_fetch(self, line, was_miss, first_use_of_prefetch, kind):
        if was_miss or first_use_of_prefetch:
            return [PrefetchCandidate(line + 1, _SEQ_PROVENANCE)]
        return []


class NextNLineTagged(Prefetcher):
    """Prefetch L+1 .. L+N on a tagged trigger (paper default N=4)."""

    hit_transparent = True

    def __init__(self, degree: int = 4) -> None:
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.degree = degree
        self.name = f"next-{degree}-line"

    def on_demand_fetch(self, line, was_miss, first_use_of_prefetch, kind):
        if was_miss or first_use_of_prefetch:
            return [
                PrefetchCandidate(line + depth, _SEQ_PROVENANCE)
                for depth in range(1, self.degree + 1)
            ]
        return []


class LookaheadN(Prefetcher):
    """Prefetch only the Nth sequential line ahead (Han et al. [4]).

    Improves timeliness without needing N prefetches per demand fetch, at
    the cost of gaps in the prefetched stream when control transfers occur
    (paper §2.1) — included as a baseline for exactly that comparison.
    """

    hit_transparent = True

    def __init__(self, distance: int = 4) -> None:
        if distance < 1:
            raise ValueError(f"distance must be >= 1, got {distance}")
        self.distance = distance
        self.name = f"lookahead-{distance}"

    def on_demand_fetch(self, line, was_miss, first_use_of_prefetch, kind):
        if was_miss or first_use_of_prefetch:
            return [PrefetchCandidate(line + self.distance, _SEQ_PROVENANCE)]
        return []
