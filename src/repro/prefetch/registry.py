"""Prefetcher registry: build any scheme from its short name.

Names match the labels in the paper's figures:

==========================  =============================================
Name                        Scheme
==========================  =============================================
``none``                    no prefetching (baseline)
``next-line-always``        next-line, always triggered
``next-line-on-miss``       next-line, triggered on miss
``next-line-tagged``        next-line, tagged trigger
``next-2-line``             next-2-lines, tagged
``next-4-line``             next-4-lines, tagged (paper's sequential ref)
``lookahead-4``             4-line lookahead, single prefetch
``target``                  history-based target prefetcher
``discontinuity``           discontinuity table + next-4-line (paper §4)
``discontinuity-2nl``       discontinuity table + next-2-line (Figure 9)
``markov``                  Markov multi-target table (§2.2 alternative)
``fdp``                     fetch-directed run-ahead (§2.2 alternative)
``mana``                    MANA-style record/replay over spatial regions
``shadow``                  FTQ-driven shadow-branch target predecode
==========================  =============================================
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.prefetch.base import NullPrefetcher, Prefetcher
from repro.prefetch.discontinuity import DiscontinuityPrefetcher
from repro.prefetch.fdp import FetchDirectedPrefetcher
from repro.prefetch.mana import ManaPrefetcher
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.shadow import ShadowBranchPrefetcher
from repro.prefetch.sequential import (
    LookaheadN,
    NextLineAlways,
    NextLineOnMiss,
    NextLineTagged,
    NextNLineTagged,
)
from repro.prefetch.target import TargetPrefetcher

_FACTORIES: Dict[str, Callable[..., Prefetcher]] = {
    "none": lambda **kw: NullPrefetcher(),
    "next-line-always": lambda **kw: NextLineAlways(),
    "next-line-on-miss": lambda **kw: NextLineOnMiss(),
    "next-line-tagged": lambda **kw: NextLineTagged(),
    "next-2-line": lambda **kw: NextNLineTagged(degree=2),
    "next-4-line": lambda **kw: NextNLineTagged(degree=kw.get("degree", 4)),
    "lookahead-4": lambda **kw: LookaheadN(distance=kw.get("distance", 4)),
    "target": lambda **kw: TargetPrefetcher(capacity=kw.get("table_entries", 8192)),
    "discontinuity": lambda **kw: DiscontinuityPrefetcher(
        table_entries=kw.get("table_entries", 8192),
        prefetch_ahead=kw.get("prefetch_ahead", 4),
        counter_max=kw.get("counter_max", 3),
    ),
    "discontinuity-2nl": lambda **kw: DiscontinuityPrefetcher(
        table_entries=kw.get("table_entries", 8192),
        prefetch_ahead=2,
        counter_max=kw.get("counter_max", 3),
    ),
    "discontinuity-noprobeahead": lambda **kw: DiscontinuityPrefetcher(
        table_entries=kw.get("table_entries", 8192),
        prefetch_ahead=kw.get("prefetch_ahead", 4),
        counter_max=kw.get("counter_max", 3),
        probe_ahead=False,
    ),
    "markov": lambda **kw: MarkovPrefetcher(
        capacity=kw.get("table_entries", 4096),
        targets_per_entry=kw.get("targets_per_entry", 2),
        fanout=kw.get("fanout", 2),
        prefetch_ahead=kw.get("prefetch_ahead", 4),
    ),
    "fdp": lambda **kw: FetchDirectedPrefetcher(
        btb_entries=kw.get("btb_entries", 1024),
        gshare_entries=kw.get("gshare_entries", 65536),
        lookahead=kw.get("lookahead", 8),
    ),
    "mana": lambda **kw: ManaPrefetcher(
        table_entries=kw.get("table_entries", 4096),
        assoc=kw.get("assoc", 4),
        region_lines=kw.get("region_lines", 8),
        replay_depth=kw.get("replay_depth", 3),
    ),
    "shadow": lambda **kw: ShadowBranchPrefetcher(
        btb_entries=kw.get("btb_entries", 1024),
        gshare_entries=kw.get("gshare_entries", 65536),
        lookahead=kw.get("lookahead", 8),
        ftq_entries=kw.get("ftq_entries", 16),
        shadow_entries=kw.get("shadow_entries", 2048),
        shadow_assoc=kw.get("shadow_assoc", 4),
        shadow_degree=kw.get("shadow_degree", 2),
    ),
}

_DISPLAY: Dict[str, str] = {
    "none": "No prefetch",
    "next-line-always": "Next-line (always)",
    "next-line-on-miss": "Next-line (on miss)",
    "next-line-tagged": "Next-line (tagged)",
    "next-2-line": "Next-2-lines (tagged)",
    "next-4-line": "Next-4-lines (tagged)",
    "lookahead-4": "Lookahead-4",
    "target": "Target prefetcher",
    "discontinuity": "Discontinuity",
    "discontinuity-2nl": "Discont (2NL)",
    "discontinuity-noprobeahead": "Discont (no probe-ahead)",
    "markov": "Markov (multi-target)",
    "fdp": "Fetch-directed",
    "mana": "MANA record/replay",
    "shadow": "Shadow-branch FTQ",
}

#: all registered names, in registry order.
PREFETCHER_NAMES: List[str] = list(_FACTORIES)


def create_prefetcher(name: str, **overrides) -> Prefetcher:
    """Instantiate the prefetcher registered under *name*.

    Keyword overrides (``table_entries``, ``prefetch_ahead``, ``degree``,
    ``distance``) are forwarded to schemes that understand them; others are
    ignored, so sweeps can pass a uniform override set.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown prefetcher {name!r}; available: {PREFETCHER_NAMES}"
        ) from None
    return factory(**overrides)


def prefetcher_display_name(name: str) -> str:
    """Return the paper-style display label for a registered name."""
    return _DISPLAY.get(name, name)
