"""The prefetch queue and filtering machinery (paper §4.1).

The paper deliberately avoids duplicating the instruction-cache tags;
prefetches contend with demand fetches for tag bandwidth, so the queue
aggressively filters before any tag probe:

- candidates matching one of the last 32 **demand fetches** are dropped;
- candidates matching a queue entry are handled by state: a *waiting*
  duplicate hoists the existing entry to the head, an *issued* or
  *invalidated* duplicate is dropped (unused queue slots deliberately
  retain issued/invalidated records to serve as this filter memory);
- every demand fetch **invalidates** matching waiting entries (the demand
  stream got there first);
- the queue is **LIFO** ("managed on a last-in, first-out basis to
  de-emphasize the older prefetches"); on overflow the oldest entries are
  dropped first.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum, unique
from typing import Dict, List, Optional

from repro.prefetch.base import PrefetchCandidate
from repro.util.containers import BoundedRecentSet


@unique
class QueueState(IntEnum):
    """Lifecycle of a queue entry."""

    WAITING = 0
    ISSUED = 1
    INVALID = 2


class QueueEntry:
    """One prefetch in the queue (or its residual filter record)."""

    __slots__ = ("line", "provenance", "state")

    def __init__(self, line: int, provenance, state: QueueState = QueueState.WAITING) -> None:
        self.line = line
        self.provenance = provenance
        self.state = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueueEntry(line={self.line}, state={QueueState(self.state).name})"


@dataclass
class QueueStats:
    """Filter and flow accounting."""

    offered: int = 0
    accepted: int = 0
    dropped_recent_demand: int = 0
    dropped_dup_issued: int = 0
    dropped_dup_invalid: int = 0
    hoisted: int = 0
    invalidated_by_demand: int = 0
    overflow_drops: int = 0
    popped: int = 0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)


@dataclass
class _QueueConfig:
    capacity: int = 32
    recent_capacity: int = 32
    lifo: bool = True
    filtering: bool = True


class PrefetchQueue:
    """The filtered prefetch queue of §4.1.

    The entry list is ordered oldest → newest; the LIFO "head" is the end
    of the list.  Capacity counts *all* entries, including issued and
    invalidated records kept as filter memory, matching the paper's reuse
    of unused slots.
    """

    def __init__(
        self,
        capacity: int = 32,
        recent_capacity: int = 32,
        lifo: bool = True,
        filtering: bool = True,
    ) -> None:
        """``filtering=False`` disables the §4.1 filters (recent-demand and
        duplicate suppression) for the ablation study; capacity and LIFO
        order still apply, and the cache-tag probe becomes the only thing
        standing between a useless prefetch and the memory system."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._config = _QueueConfig(capacity, recent_capacity, lifo, filtering)
        self._entries: List[QueueEntry] = []
        self._by_line: Dict[int, QueueEntry] = {}
        self._recent = BoundedRecentSet(recent_capacity)
        self.stats = QueueStats()
        #: maintained count of WAITING entries, so emptiness checks are O(1)
        #: (the engine backends poll this before every queue drain).  Every
        #: state transition must keep it in sync; external code reverting an
        #: issued entry goes through :meth:`requeue`.
        self.waiting = 0

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #

    def offer(self, candidate: PrefetchCandidate) -> bool:
        """Apply the filters to *candidate*; enqueue if it survives.

        Returns True iff the candidate was accepted as a new entry.
        """
        stats = self.stats
        stats.offered += 1
        line = candidate.line

        if not self._config.filtering:
            return self._append_unfiltered(candidate)

        if line in self._recent:
            stats.dropped_recent_demand += 1
            return False

        existing = self._by_line.get(line)
        if existing is not None:
            state = existing.state
            if state == QueueState.WAITING:
                # Duplicate of a pending prefetch: hoist it to the head.
                self._entries.remove(existing)
                self._entries.append(existing)
                stats.hoisted += 1
                return False
            if state == QueueState.ISSUED:
                stats.dropped_dup_issued += 1
            else:
                stats.dropped_dup_invalid += 1
            return False

        entry = QueueEntry(line, candidate.provenance)
        if len(self._entries) >= self._config.capacity:
            victim = self._entries.pop(0)  # oldest first
            del self._by_line[victim.line]
            if victim.state == QueueState.WAITING:
                self.waiting -= 1
            stats.overflow_drops += 1
        self._entries.append(entry)
        self._by_line[line] = entry
        stats.accepted += 1
        self.waiting += 1
        return True

    def _append_unfiltered(self, candidate: PrefetchCandidate) -> bool:
        """Unfiltered ablation path: enqueue subject to capacity only.

        Duplicates are allowed here, so ``_by_line`` tracks the *newest*
        entry per line — kept consistent (including overflow eviction) so
        ``state_of`` stays truthful with ``filtering=False``.
        """
        entry = QueueEntry(candidate.line, candidate.provenance)
        if len(self._entries) >= self._config.capacity:
            victim = self._entries.pop(0)  # oldest first
            # A newer duplicate may own the index slot; only the victim's
            # own mapping is dropped.
            if self._by_line.get(victim.line) is victim:
                del self._by_line[victim.line]
            if victim.state == QueueState.WAITING:
                self.waiting -= 1
            self.stats.overflow_drops += 1
        self._entries.append(entry)
        self._by_line[candidate.line] = entry
        self.stats.accepted += 1
        self.waiting += 1
        return True

    def note_demand_fetch(self, line: int) -> None:
        """Record a demand fetch: update the recent list, invalidate dups."""
        if not self._config.filtering:
            return
        self._recent.add(line)
        entry = self._by_line.get(line)
        if entry is not None and entry.state == QueueState.WAITING:
            entry.state = QueueState.INVALID
            self.waiting -= 1
            self.stats.invalidated_by_demand += 1

    # ------------------------------------------------------------------ #
    # Consumer side
    # ------------------------------------------------------------------ #

    def pop_ready(self) -> Optional[QueueEntry]:
        """Return the next waiting entry (newest first for LIFO), marking it
        issued.  The entry stays in the queue as filter memory."""
        entries = self._entries
        indices = range(len(entries) - 1, -1, -1) if self._config.lifo else range(len(entries))
        for index in indices:
            entry = entries[index]
            if entry.state == QueueState.WAITING:
                entry.state = QueueState.ISSUED
                self.waiting -= 1
                self.stats.popped += 1
                return entry
        return None

    def requeue(self, entry: QueueEntry) -> None:
        """Revert a popped entry to WAITING (engine MSHR-full put-back)."""
        entry.state = QueueState.WAITING
        self.waiting += 1

    def has_ready(self) -> bool:
        """True if any waiting entry exists."""
        return self.waiting > 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._entries)

    def waiting_count(self) -> int:
        return self.waiting

    def state_of(self, line: int) -> Optional[QueueState]:
        entry = self._by_line.get(line)
        return QueueState(entry.state) if entry is not None else None

    @property
    def capacity(self) -> int:
        return self._config.capacity

    def flush(self) -> None:
        """Drop all entries and filter memory (stats are untouched)."""
        self._entries.clear()
        self._by_line.clear()
        self._recent.clear()
        self.waiting = 0
