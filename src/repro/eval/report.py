"""Result export: JSON and Markdown rendering of experiment panels.

Used by the CLI's ``--json``/``--markdown`` flags and by the maintainers
to regenerate the tables in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List

from repro.eval.figures import ExperimentResult


def panels_to_json(panels: Iterable[ExperimentResult]) -> str:
    """Serialise panels to a JSON document (stable key order)."""
    return json.dumps(
        [panel.to_dict() for panel in panels],
        indent=2,
        sort_keys=True,
        allow_nan=True,
    )


def panels_from_json(text: str) -> List[Dict]:
    """Parse a document produced by :func:`panels_to_json` (plain dicts)."""
    data = json.loads(text)
    if not isinstance(data, list):
        raise ValueError("expected a JSON list of panels")
    for panel in data:
        for key in ("experiment", "title", "rows", "columns", "values"):
            if key not in panel:
                raise ValueError(f"panel missing key {key!r}")
    return data


def _format_cell(value: float, fmt: str) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "—"
    return format(value, fmt)


def panel_to_markdown(panel: ExperimentResult) -> str:
    """Render one panel as a GitHub-flavoured Markdown table."""
    header_unit = f" ({panel.unit})" if panel.unit else ""
    lines = [f"**{panel.experiment}** — {panel.title}{header_unit}", ""]
    lines.append("| | " + " | ".join(panel.col_labels) + " |")
    lines.append("|---" * (len(panel.col_labels) + 1) + "|")
    for label, row in zip(panel.row_labels, panel.values):
        cells = " | ".join(_format_cell(value, panel.fmt) for value in row)
        lines.append(f"| {label} | {cells} |")
    for note in panel.notes:
        lines.append("")
        lines.append(f"> {note}")
    return "\n".join(lines)


def panels_to_markdown(panels: Iterable[ExperimentResult]) -> str:
    """Render a sequence of panels as one Markdown document."""
    return "\n\n".join(panel_to_markdown(panel) for panel in panels)
