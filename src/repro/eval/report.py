"""Result export: JSON and Markdown rendering of experiment results.

Used by the CLI's ``--json``/``--markdown`` flags and by the maintainers
to regenerate the tables in EXPERIMENTS.md.  The ``panels_*`` functions
render bare panel tables; the ``outcomes_*`` functions render full
:class:`~repro.eval.experiment.ExperimentOutcome` objects — panels plus
the declared paper-expectation verdicts.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List

from repro.eval.experiment import ExperimentOutcome, Verdict
from repro.eval.figures import ExperimentResult


def panels_to_json(panels: Iterable[ExperimentResult]) -> str:
    """Serialise panels to a JSON document (stable key order)."""
    return json.dumps(
        [panel.to_dict() for panel in panels],
        indent=2,
        sort_keys=True,
        allow_nan=True,
    )


def panels_from_json(text: str) -> List[Dict]:
    """Parse a document produced by :func:`panels_to_json` (plain dicts)."""
    data = json.loads(text)
    if not isinstance(data, list):
        raise ValueError("expected a JSON list of panels")
    for panel in data:
        for key in ("experiment", "title", "rows", "columns", "values"):
            if key not in panel:
                raise ValueError(f"panel missing key {key!r}")
    return data


def _format_cell(value: float, fmt: str) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "—"
    return format(value, fmt)


def panel_to_markdown(panel: ExperimentResult) -> str:
    """Render one panel as a GitHub-flavoured Markdown table."""
    header_unit = f" ({panel.unit})" if panel.unit else ""
    lines = [f"**{panel.experiment}** — {panel.title}{header_unit}", ""]
    lines.append("| | " + " | ".join(panel.col_labels) + " |")
    lines.append("|---" * (len(panel.col_labels) + 1) + "|")
    for label, row in zip(panel.row_labels, panel.values):
        cells = " | ".join(_format_cell(value, panel.fmt) for value in row)
        lines.append(f"| {label} | {cells} |")
    for note in panel.notes:
        lines.append("")
        lines.append(f"> {note}")
    return "\n".join(lines)


def panels_to_markdown(panels: Iterable[ExperimentResult]) -> str:
    """Render a sequence of panels as one Markdown document."""
    return "\n\n".join(panel_to_markdown(panel) for panel in panels)


def outcomes_to_json(outcomes: Iterable[ExperimentOutcome]) -> str:
    """Serialise outcomes (panels + verdicts) to a JSON document."""
    return json.dumps(
        [outcome.to_dict() for outcome in outcomes],
        indent=2,
        sort_keys=True,
        allow_nan=True,
    )


def outcomes_from_json(text: str) -> List[Dict]:
    """Parse a document produced by :func:`outcomes_to_json` (plain dicts)."""
    data = json.loads(text)
    if not isinstance(data, list):
        raise ValueError("expected a JSON list of experiment outcomes")
    for outcome in data:
        for key in ("experiment", "scale", "panels", "verdicts"):
            if key not in outcome:
                raise ValueError(f"outcome missing key {key!r}")
    return data


_VERDICT_MARKS = {"pass": "✅", "fail": "❌", "skip": "⏭"}


def _verdict_to_markdown(verdict: Verdict) -> str:
    mark = _VERDICT_MARKS.get(verdict.status, verdict.status)
    line = f"- {mark} `{verdict.panel}` [{verdict.kind}]: {verdict.description}"
    if verdict.detail:
        line += f" — {verdict.detail}"
    return line


def outcome_to_markdown(outcome: ExperimentOutcome) -> str:
    """Render one outcome: its panels, then its expectation verdicts."""
    experiment = outcome.experiment
    lines = [
        f"## {experiment.name} — {experiment.title}",
        "",
        f"*{experiment.paper}; scale `{outcome.ctx.scale.name}`, "
        f"seed {outcome.ctx.seed}*",
        "",
        panels_to_markdown(outcome.panels),
    ]
    if outcome.verdicts:
        lines += ["", f"**{outcome.verdict_summary()}**", ""]
        lines += [_verdict_to_markdown(verdict) for verdict in outcome.verdicts]
    return "\n".join(lines)


def outcomes_to_markdown(outcomes: Iterable[ExperimentOutcome]) -> str:
    """Render a sequence of outcomes as one Markdown document."""
    return "\n\n".join(outcome_to_markdown(outcome) for outcome in outcomes)
