"""Declarative description of one :func:`repro.eval.runner.run_system` call.

A :class:`RunSpec` is the unit of work of the sweep-execution subsystem
(:mod:`repro.eval.executor`): a frozen, hashable, picklable record of every
parameter that influences a simulation's result.  Because it is hashable it
keys the in-process memo; because it is picklable it can be shipped to
worker processes; and because :meth:`RunSpec.content_hash` is stable across
processes and sessions it keys the persistent on-disk result cache
(:mod:`repro.eval.diskcache`).

The one ``run_system`` parameter a RunSpec cannot carry is an arbitrary
``prefetcher_factory`` callable (not picklable, not hashable).  The single
factory-based configuration the experiments use — the §2.3 cooperative
software prefetcher — is instead encoded declaratively via the
``software_prefetch`` flag and reconstructed inside the executing process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.caches.config import DEFAULT_HIERARCHY, HierarchyConfig
from repro.eval.profiles import ExperimentScale, get_scale
from repro.isa.classify import MissClass
from repro.prefetch.registry import PREFETCHER_NAMES
from repro.timing.params import DEFAULT_TIMING, TimingParams
from repro.trace.source import validate_workload

#: default experiment seed (any fixed value works; results are deterministic
#: in it).
DEFAULT_SEED = 1337


@dataclass(frozen=True)
class RunSpec:
    """Everything that determines one ``run_system`` result.

    Prefer :meth:`RunSpec.create`, which accepts the same ergonomic
    argument forms as ``run_system`` (a scale name or None, an overrides
    dict) and normalizes them into the canonical hashable representation.
    """

    workload: str
    n_cores: int
    scale: ExperimentScale
    prefetcher: str = "none"
    hierarchy: HierarchyConfig = DEFAULT_HIERARCHY
    timing: TimingParams = DEFAULT_TIMING
    l2_policy: str = "normal"
    #: sorted ``(key, value)`` pairs — the hashable form of the dict.
    prefetcher_overrides: Tuple[Tuple[str, Any], ...] = ()
    free_miss_classes: FrozenSet[MissClass] = frozenset()
    queue_filtering: bool = True
    queue_lifo: bool = True
    useless_hint_filter: bool = False
    l2_inclusive: bool = False
    l1_replacement: str = "lru"
    l2_replacement: str = "lru"
    offchip_gbps: Optional[float] = None
    #: run the §2.3 cooperative software prefetcher (built per-core inside
    #: the executing process; replaces the ``prefetcher`` registry name).
    software_prefetch: bool = False
    seed: int = DEFAULT_SEED
    #: engine backend ("reference"/"vectorized"/"auto", see
    #: :mod:`repro.core.backends`).  Backends are bit-identical, so this is
    #: deliberately *excluded* from :meth:`canonical_dict` — keying the
    #: persistent cache on it would split identical results across entries
    #: (lint R3 carries the matching non-keyed allowlist entry).
    engine_backend: str = "auto"

    @classmethod
    def create(
        cls,
        workload: str,
        n_cores: int,
        prefetcher: str = "none",
        scale: Union[ExperimentScale, str, None] = None,
        hierarchy: HierarchyConfig = DEFAULT_HIERARCHY,
        timing: TimingParams = DEFAULT_TIMING,
        l2_policy: str = "normal",
        prefetcher_overrides: Optional[Dict[str, Any]] = None,
        free_miss_classes: FrozenSet[MissClass] = frozenset(),
        queue_filtering: bool = True,
        queue_lifo: bool = True,
        useless_hint_filter: bool = False,
        l2_inclusive: bool = False,
        l1_replacement: str = "lru",
        l2_replacement: str = "lru",
        offchip_gbps: Optional[float] = None,
        software_prefetch: bool = False,
        seed: int = DEFAULT_SEED,
        engine_backend: str = "auto",
    ) -> "RunSpec":
        """Build a spec, resolving the scale and normalizing the overrides.

        Rejects unregistered prefetcher names and unresolvable workload
        names up front (the workload check routes through the trace-source
        registry, so synthetic profiles, ``mix`` and ingested
        ``external:<name>`` streams are all accepted), so catalog typos
        fail at declaration time rather than deep inside a worker process.
        """
        if not software_prefetch and prefetcher not in PREFETCHER_NAMES:
            raise ValueError(
                f"unknown prefetcher {prefetcher!r}; available: {PREFETCHER_NAMES}"
            )
        validate_workload(workload)
        if scale is None or isinstance(scale, str):
            scale = get_scale(scale or "")
        overrides = tuple(sorted((prefetcher_overrides or {}).items()))
        return cls(
            workload=workload,
            n_cores=n_cores,
            scale=scale,
            prefetcher=prefetcher,
            hierarchy=hierarchy,
            timing=timing,
            l2_policy=l2_policy,
            prefetcher_overrides=overrides,
            free_miss_classes=frozenset(free_miss_classes),
            queue_filtering=queue_filtering,
            queue_lifo=queue_lifo,
            useless_hint_filter=useless_hint_filter,
            l2_inclusive=l2_inclusive,
            l1_replacement=l1_replacement,
            l2_replacement=l2_replacement,
            offchip_gbps=offchip_gbps,
            software_prefetch=software_prefetch,
            seed=seed,
            engine_backend=engine_backend,
        )

    # ------------------------------------------------------------------ #
    # Execution plumbing
    # ------------------------------------------------------------------ #

    @property
    def overrides(self) -> Dict[str, Any]:
        return dict(self.prefetcher_overrides)

    def run_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for ``run_system`` (minus the software-prefetch
        factory, which the executor builds in-process)."""
        return dict(
            workload=self.workload,
            n_cores=self.n_cores,
            prefetcher=self.prefetcher,
            scale=self.scale,
            hierarchy=self.hierarchy,
            timing=self.timing,
            l2_policy=self.l2_policy,
            prefetcher_overrides=self.overrides,
            free_miss_classes=self.free_miss_classes,
            queue_filtering=self.queue_filtering,
            queue_lifo=self.queue_lifo,
            useless_hint_filter=self.useless_hint_filter,
            l2_inclusive=self.l2_inclusive,
            l1_replacement=self.l1_replacement,
            l2_replacement=self.l2_replacement,
            offchip_gbps=self.offchip_gbps,
            seed=self.seed,
            engine_backend=self.engine_backend,
        )

    def trace_key(self) -> Tuple[str, int, str, int]:
        """Grouping key for specs that replay the same generated traces."""
        return (self.workload, self.n_cores, self.scale.name, self.seed)

    # ------------------------------------------------------------------ #
    # Content hashing (disk-cache key)
    # ------------------------------------------------------------------ #

    def canonical_dict(self) -> Dict[str, Any]:
        """JSON-serializable canonical form (stable across processes)."""
        return {
            "workload": self.workload,
            "n_cores": self.n_cores,
            "prefetcher": self.prefetcher,
            "scale": dataclasses.asdict(self.scale),
            "hierarchy": dataclasses.asdict(self.hierarchy),
            "timing": dataclasses.asdict(self.timing),
            "l2_policy": self.l2_policy,
            "prefetcher_overrides": [list(item) for item in self.prefetcher_overrides],
            "free_miss_classes": sorted(cls.name for cls in self.free_miss_classes),
            "queue_filtering": self.queue_filtering,
            "queue_lifo": self.queue_lifo,
            "useless_hint_filter": self.useless_hint_filter,
            "l2_inclusive": self.l2_inclusive,
            "l1_replacement": self.l1_replacement,
            "l2_replacement": self.l2_replacement,
            "offchip_gbps": self.offchip_gbps,
            "software_prefetch": self.software_prefetch,
            "seed": self.seed,
        }

    def content_hash(self) -> str:
        """SHA-256 of the canonical form — the persistent cache key."""
        blob = json.dumps(self.canonical_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short human-readable label (progress logging)."""
        parts = [self.workload, f"{self.n_cores}c"]
        parts.append("swpf" if self.software_prefetch else self.prefetcher)
        if self.l2_policy != "normal":
            parts.append(self.l2_policy)
        if self.prefetcher_overrides:
            parts.append(",".join(f"{k}={v}" for k, v in self.prefetcher_overrides))
        return "/".join(parts)


def dedupe_specs(specs: Iterable[RunSpec]) -> List[RunSpec]:
    """Order-preserving deduplication of a spec iterable."""
    seen = set()
    unique: List[RunSpec] = []
    for spec in specs:
        if spec not in seen:
            seen.add(spec)
            unique.append(spec)
    return unique
