"""Figure 6 — performance gains of the prefetchers (normal L2 install).

Paper: "Performance gains achieved by different HW prefetching schemes;
(i) single core and (ii) 4-way CMP."

Expected shape (paper §6): the gains are *significantly less* than the
Figure 4 limit study suggests — the L2 data pollution of Figure 7
counterbalances much of the instruction-miss reduction.  The CMP
discontinuity gain tops out around 1.05-1.28×.
"""

from __future__ import annotations

from typing import List, Optional

from repro.eval.executor import run_specs
from repro.eval.fig05 import SCHEMES
from repro.eval.fig05 import specs as _fig05_specs
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale
from repro.eval.runner import DEFAULT_SEED, run_system_cached
from repro.eval.runspec import RunSpec
from repro.prefetch.registry import prefetcher_display_name
from repro.trace.synth.workloads import DISPLAY_NAMES, workload_names


def specs(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    """Figure 6 reads exactly the Figure 5 run set (normal L2 install)."""
    return _fig05_specs(scale, seed)


def perf_panel(
    experiment: str,
    title: str,
    workloads: List[str],
    n_cores: int,
    l2_policy: str,
    scale: Optional[ExperimentScale],
    seed: int,
    schemes: Optional[List[str]] = None,
    note: str = "",
) -> ExperimentResult:
    """Speedup-vs-no-prefetch panel shared by Figures 6, 8 and 9(ii)."""
    chosen = schemes or SCHEMES
    col_labels = [DISPLAY_NAMES[w] for w in workloads]
    baselines = {
        workload: run_system_cached(workload, n_cores, "none", scale=scale, seed=seed)
        for workload in workloads
    }
    rows = []
    values = []
    for scheme in chosen:
        row = []
        for workload in workloads:
            result = run_system_cached(
                workload, n_cores, scheme, scale=scale, l2_policy=l2_policy, seed=seed
            )
            row.append(result.aggregate_ipc / baselines[workload].aggregate_ipc)
        rows.append(prefetcher_display_name(scheme))
        values.append(row)
    notes = [note] if note else []
    return ExperimentResult(
        experiment=experiment,
        title=title,
        row_labels=rows,
        col_labels=col_labels,
        values=values,
        unit="speedup, X",
        notes=notes,
    )


def run(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """Run Figure 6; returns panels (i) and (ii)."""
    run_specs(specs(scale, seed), label="fig06")
    base = workload_names()
    note = "normal L2 install: pollution limits the gains (paper: <= ~1.28X)"
    return [
        perf_panel(
            "fig06i",
            "Prefetcher speedups, normal L2 install (single core)",
            base,
            1,
            "normal",
            scale,
            seed,
            note=note,
        ),
        perf_panel(
            "fig06ii",
            "Prefetcher speedups, normal L2 install (4-way CMP)",
            base + ["mix"],
            4,
            "normal",
            scale,
            seed,
            note=note,
        ),
    ]
