"""Shared experiment plumbing: trace caching, compilation and system runs.

Trace generation is the most expensive step of an experiment sweep, and
every configuration of a sweep must replay the *same* trace for results to
be comparable.  Two layers keep that cheap:

- :func:`get_traces` memoizes raw generated traces by
  ``(workload, n_cores, seed, n_instructions)`` within the process;
- :func:`get_compiled_traces` serves the packed
  :class:`~repro.trace.compiled.CompiledTrace` form the engine's fast path
  consumes, backed by its own memo **and** the persistent on-disk trace
  store (:mod:`repro.trace.store`, ``$REPRO_TRACE_DIR``) — a store hit
  skips synthesis *and* lowering entirely, across processes and sessions.
  Set ``REPRO_COMPILED_TRACES=0`` to force the raw-generator path (A/B
  profiling; results are bit-identical either way).

Result caching is layered (see :mod:`repro.eval.executor`): an in-process
memo, then the persistent on-disk cache of :mod:`repro.eval.diskcache`.
:func:`run_system_cached` routes through both; batch submission of many
configurations (with process parallelism, checkpoint-on-completion
persistence and per-spec failure isolation — see ``docs/performance.md``,
"Failure semantics and sweep observability") goes through
:func:`repro.eval.executor.run_specs` /
:func:`~repro.eval.executor.run_specs_report`.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.caches.config import DEFAULT_HIERARCHY, HierarchyConfig
from repro.cmp.system import System, SystemConfig, SystemResult
from repro.envvars import REPRO_COMPILED_TRACES, REPRO_SYNTH_LOG
from repro.eval.profiles import ExperimentScale, get_scale
from repro.eval.runspec import DEFAULT_SEED, RunSpec
from repro.isa.classify import MissClass
from repro.timing.params import DEFAULT_TIMING, TimingParams
from repro.trace import store as trace_store
from repro.trace.compiled import CompiledTrace, TraceLike
from repro.trace.source import traces_for
from repro.trace.stream import Trace

__all__ = [
    "DEFAULT_SEED",
    "get_traces",
    "get_compiled_traces",
    "precompile_for_specs",
    "trace_budget",
    "compiled_traces_enabled",
    "clear_trace_cache",
    "run_system",
    "run_system_cached",
    "clear_result_cache",
]

#: set to ``0``/``off`` to bypass compiled traces (and the trace store) and
#: feed the engine raw traces through the lazy lowering instead.
COMPILED_ENV = REPRO_COMPILED_TRACES

#: when set to a path, every *actual* trace synthesis appends one JSON line
#: ``{"pid": ..., "workload": ...}`` there — lets tests assert that pool
#: workers served traces from the store instead of re-synthesizing.
SYNTH_LOG_ENV = REPRO_SYNTH_LOG

_TRACE_CACHE: Dict[Tuple[str, int, int, int], List[Trace]] = {}
_COMPILED_CACHE: Dict[Tuple[str, int, int, int, int], List[CompiledTrace]] = {}

#: number of make_traces calls this process has performed (test observability).
_synthesis_count = 0


def compiled_traces_enabled() -> bool:
    """Feed the engine compiled traces?  ``REPRO_COMPILED_TRACES=0`` opts out."""
    return os.environ.get(COMPILED_ENV, "1").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def synthesis_count() -> int:
    """How many times this process has actually run trace synthesis."""
    return _synthesis_count


def _note_synthesis(workload: str, n_cores: int, seed: int, n_instructions: int) -> None:
    log_path = os.environ.get(SYNTH_LOG_ENV)
    if not log_path:
        return
    record = {
        "pid": os.getpid(),
        "workload": workload,
        "n_cores": n_cores,
        "seed": seed,
        "n_instructions": n_instructions,
    }
    try:
        with open(log_path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    except OSError:
        pass


def get_traces(
    workload: str,
    n_cores: int,
    n_instructions: int,
    seed: int = DEFAULT_SEED,
) -> List[Trace]:
    """Return (cached) per-core traces for a workload/core-count pair.

    Name resolution goes through the trace-source registry
    (:mod:`repro.trace.source`), so synthetic profiles, the mix and
    ingested ``external:<name>`` streams all land in the same memo.
    """
    global _synthesis_count
    key = (workload, n_cores, seed, n_instructions)
    traces = _TRACE_CACHE.get(key)
    if traces is None:
        traces = traces_for(workload, n_cores, seed, n_instructions)
        _synthesis_count += 1
        _note_synthesis(workload, n_cores, seed, n_instructions)
        _TRACE_CACHE[key] = traces
    return traces


def _load_or_compile(
    workload: str,
    n_cores: int,
    n_instructions: int,
    seed: int,
    line_size: int,
) -> Tuple[List[CompiledTrace], str]:
    """All cores' compiled traces for one key; source is "store"/"compiled".

    Every core found in the on-disk store is served from it; missing cores
    trigger one synthesis (through the raw memo, shared across line sizes)
    plus compilation, and the fresh files are persisted for other
    processes.  A corrupt/truncated/stale store file reads as a miss here
    and is overwritten with a freshly compiled one.
    """
    loaded = [
        trace_store.load(workload, seed, core, n_instructions, line_size)
        for core in range(n_cores)
    ]
    if all(compiled is not None for compiled in loaded):
        return loaded, "store"  # type: ignore[return-value]
    raw = get_traces(workload, n_cores, n_instructions, seed)
    compiled_list: List[CompiledTrace] = []
    for core, compiled in enumerate(loaded):
        if compiled is None:
            compiled = CompiledTrace.compile(
                raw[core],
                line_size,
                workload=workload,
                seed=seed,
                core=core,
                n_instructions=n_instructions,
            )
            trace_store.store(compiled)
        compiled_list.append(compiled)
    return compiled_list, "compiled"


def get_compiled_traces(
    workload: str,
    n_cores: int,
    n_instructions: int,
    seed: int = DEFAULT_SEED,
    line_size: int = 64,
) -> List[CompiledTrace]:
    """Packed per-core traces: memo → trace store → synthesize + compile."""
    key = (workload, n_cores, seed, n_instructions, line_size)
    cached = _COMPILED_CACHE.get(key)
    if cached is None:
        cached, _ = _load_or_compile(workload, n_cores, n_instructions, seed, line_size)
        _COMPILED_CACHE[key] = cached
    return cached


def trace_budget(scale: ExperimentScale, n_cores: int) -> Tuple[int, int]:
    """``(total, warm)`` instruction budgets one run draws from *scale*."""
    if n_cores == 1:
        return scale.single_total, scale.warm_instructions
    return scale.cmp_total_per_core, scale.cmp_warm_instructions


def precompile_for_specs(
    specs: Iterable[RunSpec],
) -> Dict[Tuple[str, int, int, int, int], str]:
    """Ensure every spec's compiled traces exist (memo + on-disk store).

    Returns one outcome per unique trace key: ``"memo"`` (already in this
    process), ``"store"`` (loaded from disk) or ``"compiled"`` (synthesized
    and persisted).  The executor calls this in the parent before
    dispatching a pool, so workers only ever *load* packed files; the
    ``precompile`` CLI verb exposes it directly.  No-op when compiled
    traces are disabled.
    """
    outcomes: Dict[Tuple[str, int, int, int, int], str] = {}
    if not compiled_traces_enabled():
        return outcomes
    for spec in specs:
        total, _ = trace_budget(spec.scale, spec.n_cores)
        key = (spec.workload, spec.n_cores, spec.seed, total, spec.hierarchy.line_size)
        if key in outcomes:
            continue
        if key in _COMPILED_CACHE:
            outcomes[key] = "memo"
            continue
        traces, source = _load_or_compile(
            spec.workload, spec.n_cores, total, spec.seed, spec.hierarchy.line_size
        )
        _COMPILED_CACHE[key] = traces
        outcomes[key] = source
    return outcomes


def clear_trace_cache() -> None:
    """Drop all cached traces, raw and compiled (frees memory between
    experiment suites; the on-disk trace store is untouched)."""
    _TRACE_CACHE.clear()
    _COMPILED_CACHE.clear()


def run_system(
    workload: str,
    n_cores: int,
    prefetcher: str = "none",
    scale: Optional[ExperimentScale] = None,
    hierarchy: HierarchyConfig = DEFAULT_HIERARCHY,
    timing: TimingParams = DEFAULT_TIMING,
    l2_policy: str = "normal",
    prefetcher_overrides: Optional[dict] = None,
    free_miss_classes: FrozenSet[MissClass] = frozenset(),
    queue_filtering: bool = True,
    queue_lifo: bool = True,
    useless_hint_filter: bool = False,
    l2_inclusive: bool = False,
    l1_replacement: str = "lru",
    l2_replacement: str = "lru",
    offchip_gbps: Optional[float] = None,
    prefetcher_factory: Optional[Callable[[int], object]] = None,
    seed: int = DEFAULT_SEED,
    engine_backend: str = "auto",
) -> SystemResult:
    """Run one fully specified configuration and return its results."""
    scale = scale or get_scale()
    total, warm = trace_budget(scale, n_cores)
    traces: Sequence[TraceLike]
    if compiled_traces_enabled():
        traces = get_compiled_traces(workload, n_cores, total, seed, hierarchy.line_size)
    else:
        traces = get_traces(workload, n_cores, total, seed)
    config = SystemConfig(
        n_cores=n_cores,
        hierarchy=hierarchy,
        timing=timing,
        offchip_gbps=offchip_gbps,
        prefetcher=prefetcher,
        prefetcher_overrides=prefetcher_overrides or {},
        l2_policy=l2_policy,
        queue_filtering=queue_filtering,
        queue_lifo=queue_lifo,
        useless_hint_filter=useless_hint_filter,
        l2_inclusive=l2_inclusive,
        l1_replacement=l1_replacement,
        l2_replacement=l2_replacement,
        prefetcher_factory=prefetcher_factory,
        warm_instructions=warm,
        free_miss_classes=free_miss_classes,
        engine_backend=engine_backend,
    )
    return System(config, traces).run()


def run_system_cached(
    workload: str,
    n_cores: int,
    prefetcher: str = "none",
    scale: Optional[ExperimentScale] = None,
    hierarchy: HierarchyConfig = DEFAULT_HIERARCHY,
    timing: TimingParams = DEFAULT_TIMING,
    l2_policy: str = "normal",
    prefetcher_overrides: Optional[dict] = None,
    free_miss_classes: FrozenSet[MissClass] = frozenset(),
    queue_filtering: bool = True,
    queue_lifo: bool = True,
    useless_hint_filter: bool = False,
    l2_inclusive: bool = False,
    l1_replacement: str = "lru",
    l2_replacement: str = "lru",
    offchip_gbps: Optional[float] = None,
    software_prefetch: bool = False,
    seed: int = DEFAULT_SEED,
    engine_backend: str = "auto",
) -> SystemResult:
    """Like :func:`run_system`, but served through the layered caches.

    The paper's figures share many configurations (e.g. Figures 5, 6 and 7
    all read the same runs); the in-process memo lets each figure driver
    ask for what it needs without coordinating with the others, and the
    disk cache extends that sharing across invocations.  Accepts every
    ``run_system`` parameter except an arbitrary ``prefetcher_factory``
    (use ``software_prefetch=True`` for the §2.3 software prefetcher).
    """
    spec = RunSpec.create(
        workload,
        n_cores,
        prefetcher,
        scale=scale,
        hierarchy=hierarchy,
        timing=timing,
        l2_policy=l2_policy,
        prefetcher_overrides=prefetcher_overrides,
        free_miss_classes=free_miss_classes,
        queue_filtering=queue_filtering,
        queue_lifo=queue_lifo,
        useless_hint_filter=useless_hint_filter,
        l2_inclusive=l2_inclusive,
        l1_replacement=l1_replacement,
        l2_replacement=l2_replacement,
        offchip_gbps=offchip_gbps,
        software_prefetch=software_prefetch,
        seed=seed,
        engine_backend=engine_backend,
    )
    from repro.eval.executor import execute_spec

    return execute_spec(spec)


def clear_result_cache() -> None:
    """Drop memoized run results (the disk cache is untouched)."""
    from repro.eval.executor import clear_memo

    clear_memo()
