"""Shared experiment plumbing: trace caching and system runs.

Trace generation is the most expensive step of an experiment sweep, and
every configuration of a sweep must replay the *same* trace for results to
be comparable.  :func:`get_traces` memoizes generated traces by
``(workload, n_cores, seed, n_instructions)``.

Result caching is layered (see :mod:`repro.eval.executor`): an in-process
memo, then the persistent on-disk cache of :mod:`repro.eval.diskcache`.
:func:`run_system_cached` routes through both; batch submission of many
configurations (with process parallelism, checkpoint-on-completion
persistence and per-spec failure isolation — see ``docs/performance.md``,
"Failure semantics and sweep observability") goes through
:func:`repro.eval.executor.run_specs` /
:func:`~repro.eval.executor.run_specs_report`.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.api import make_traces
from repro.caches.config import DEFAULT_HIERARCHY, HierarchyConfig
from repro.cmp.system import System, SystemConfig, SystemResult
from repro.eval.profiles import ExperimentScale, get_scale
from repro.eval.runspec import DEFAULT_SEED, RunSpec
from repro.isa.classify import MissClass
from repro.timing.params import DEFAULT_TIMING, TimingParams
from repro.trace.stream import Trace

__all__ = [
    "DEFAULT_SEED",
    "get_traces",
    "clear_trace_cache",
    "run_system",
    "run_system_cached",
    "clear_result_cache",
]

_TRACE_CACHE: Dict[Tuple[str, int, int, int], List[Trace]] = {}


def get_traces(
    workload: str,
    n_cores: int,
    n_instructions: int,
    seed: int = DEFAULT_SEED,
) -> List[Trace]:
    """Return (cached) per-core traces for a workload/core-count pair."""
    key = (workload, n_cores, seed, n_instructions)
    traces = _TRACE_CACHE.get(key)
    if traces is None:
        traces = make_traces(workload, n_cores, seed, n_instructions)
        _TRACE_CACHE[key] = traces
    return traces


def clear_trace_cache() -> None:
    """Drop all cached traces (frees memory between experiment suites)."""
    _TRACE_CACHE.clear()


def run_system(
    workload: str,
    n_cores: int,
    prefetcher: str = "none",
    scale: Optional[ExperimentScale] = None,
    hierarchy: HierarchyConfig = DEFAULT_HIERARCHY,
    timing: TimingParams = DEFAULT_TIMING,
    l2_policy: str = "normal",
    prefetcher_overrides: Optional[dict] = None,
    free_miss_classes: FrozenSet[MissClass] = frozenset(),
    queue_filtering: bool = True,
    queue_lifo: bool = True,
    useless_hint_filter: bool = False,
    l2_inclusive: bool = False,
    l1_replacement: str = "lru",
    l2_replacement: str = "lru",
    offchip_gbps: Optional[float] = None,
    prefetcher_factory: Optional[Callable[[int], object]] = None,
    seed: int = DEFAULT_SEED,
) -> SystemResult:
    """Run one fully specified configuration and return its results."""
    scale = scale or get_scale()
    if n_cores == 1:
        total = scale.single_total
        warm = scale.warm_instructions
    else:
        total = scale.cmp_total_per_core
        warm = scale.cmp_warm_instructions
    traces = get_traces(workload, n_cores, total, seed)
    config = SystemConfig(
        n_cores=n_cores,
        hierarchy=hierarchy,
        timing=timing,
        offchip_gbps=offchip_gbps,
        prefetcher=prefetcher,
        prefetcher_overrides=prefetcher_overrides or {},
        l2_policy=l2_policy,
        queue_filtering=queue_filtering,
        queue_lifo=queue_lifo,
        useless_hint_filter=useless_hint_filter,
        l2_inclusive=l2_inclusive,
        l1_replacement=l1_replacement,
        l2_replacement=l2_replacement,
        prefetcher_factory=prefetcher_factory,
        warm_instructions=warm,
        free_miss_classes=free_miss_classes,
    )
    return System(config, traces).run()


def run_system_cached(
    workload: str,
    n_cores: int,
    prefetcher: str = "none",
    scale: Optional[ExperimentScale] = None,
    hierarchy: HierarchyConfig = DEFAULT_HIERARCHY,
    timing: TimingParams = DEFAULT_TIMING,
    l2_policy: str = "normal",
    prefetcher_overrides: Optional[dict] = None,
    free_miss_classes: FrozenSet[MissClass] = frozenset(),
    queue_filtering: bool = True,
    queue_lifo: bool = True,
    useless_hint_filter: bool = False,
    l2_inclusive: bool = False,
    l1_replacement: str = "lru",
    l2_replacement: str = "lru",
    offchip_gbps: Optional[float] = None,
    software_prefetch: bool = False,
    seed: int = DEFAULT_SEED,
) -> SystemResult:
    """Like :func:`run_system`, but served through the layered caches.

    The paper's figures share many configurations (e.g. Figures 5, 6 and 7
    all read the same runs); the in-process memo lets each figure driver
    ask for what it needs without coordinating with the others, and the
    disk cache extends that sharing across invocations.  Accepts every
    ``run_system`` parameter except an arbitrary ``prefetcher_factory``
    (use ``software_prefetch=True`` for the §2.3 software prefetcher).
    """
    spec = RunSpec.create(
        workload,
        n_cores,
        prefetcher,
        scale=scale,
        hierarchy=hierarchy,
        timing=timing,
        l2_policy=l2_policy,
        prefetcher_overrides=prefetcher_overrides,
        free_miss_classes=free_miss_classes,
        queue_filtering=queue_filtering,
        queue_lifo=queue_lifo,
        useless_hint_filter=useless_hint_filter,
        l2_inclusive=l2_inclusive,
        l1_replacement=l1_replacement,
        l2_replacement=l2_replacement,
        offchip_gbps=offchip_gbps,
        software_prefetch=software_prefetch,
        seed=seed,
    )
    from repro.eval.executor import execute_spec

    return execute_spec(spec)


def clear_result_cache() -> None:
    """Drop memoized run results (the disk cache is untouched)."""
    from repro.eval.executor import clear_memo

    clear_memo()
