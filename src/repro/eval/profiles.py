"""Experiment scale profiles.

A scale sets how many instructions are warmed and measured per core.  The
cache geometry is never scaled — only simulation length — so miss-rate
*regimes* match the paper at every scale; longer runs tighten confidence
intervals and deepen L2 warm-up.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.envvars import REPRO_PROFILE

#: environment variable selecting the scale profile.
SCALE_ENV_VAR = REPRO_PROFILE


@dataclass(frozen=True)
class ExperimentScale:
    """Instruction budgets for one experiment run."""

    name: str
    #: warm-up instructions per core (stats discarded).
    warm_instructions: int
    #: measured instructions per core (single-core runs).
    measure_instructions: int
    #: measured instructions per core in CMP runs (kept smaller because the
    #: CMP simulates n_cores × this amount of work).
    cmp_measure_instructions: int

    @property
    def cmp_warm_instructions(self) -> int:
        """Per-core warm-up for CMP runs.

        Four cores co-warm the one shared L2, so per-core warm-up is scaled
        down to keep the *total* warm-up work on the shared L2 comparable
        to the single-core configuration (private L1s warm within a few
        tens of thousands of instructions regardless).
        """
        return max(40_000, self.warm_instructions // 3)

    @property
    def single_total(self) -> int:
        return self.warm_instructions + self.measure_instructions

    @property
    def cmp_total_per_core(self) -> int:
        return self.cmp_warm_instructions + self.cmp_measure_instructions


SCALES = {
    "smoke": ExperimentScale(
        name="smoke",
        warm_instructions=60_000,
        measure_instructions=150_000,
        cmp_measure_instructions=80_000,
    ),
    "default": ExperimentScale(
        name="default",
        warm_instructions=300_000,
        measure_instructions=1_200_000,
        cmp_measure_instructions=500_000,
    ),
    "full": ExperimentScale(
        name="full",
        warm_instructions=1_000_000,
        measure_instructions=4_000_000,
        cmp_measure_instructions=2_000_000,
    ),
}


def get_scale(name: str = "") -> ExperimentScale:
    """Return the requested scale, or the environment/default one.

    Resolution order: explicit *name* argument → ``REPRO_PROFILE``
    environment variable → ``"default"``.
    """
    resolved = name or os.environ.get(SCALE_ENV_VAR, "") or "default"
    try:
        return SCALES[resolved]
    except KeyError:
        raise KeyError(f"unknown scale {resolved!r}; available: {sorted(SCALES)}") from None
