"""``repro-experiment`` command-line front end.

Usage::

    repro-experiment list
    repro-experiment describe fig05 replication-check
    repro-experiment check all --scale smoke
    repro-experiment fig05 --scale smoke --progress
    repro-experiment fig05 fig06 --scale smoke
    repro-experiment all --scale default --seed 7 --strict
    repro-experiment precompile all --scale smoke
    repro-experiment precompile fig01 --trace-store /var/cache/traces

Verbs (the first positional token):

- ``list`` — one line per catalog entry: name, paper reference, title.
- ``sources`` — one line per registered trace source (synthetic
  profiles, ``mix`` and ingested ``external:<name>`` streams).
- ``describe`` — full declaration: grid size, panels, expectation bands.
- ``check`` — dry-run cost estimate: spec counts plus a disk-cache hit
  probe; nothing is simulated.
- ``precompile`` — populate the on-disk compiled-trace store for the
  named experiments (default: all) without simulating anything — the CI
  warm-up step, or the prelude to a sweep on a shared store directory.

Anything else is an experiment name (see ``list``) or ``all``.  After a
run, each experiment's declared paper expectations are evaluated and the
verdicts printed; ``--strict`` (or ``REPRO_STRICT_EXPECTATIONS=1``) makes
failing verdicts exit non-zero.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from repro.core.backends import AUTO_BACKEND, BACKEND_NAMES
from repro.envvars import (
    REPRO_ENGINE_BACKEND,
    REPRO_STRICT_EXPECTATIONS,
    REPRO_TRACE_DIR,
)
from repro.eval.executor import SweepError, run_specs_report
from repro.eval.experiment import ExperimentOutcome, estimate_experiment
from repro.eval.profiles import SCALES, get_scale
from repro.eval.registry import (
    collect_specs_by_experiment,
    experiment_names,
    get_experiment,
    run_experiment_outcome,
)
from repro.eval.runspec import RunSpec, dedupe_specs
from repro.util.clock import Stopwatch

#: env var: treat failing expectation verdicts as a non-zero exit.
STRICT_ENV = REPRO_STRICT_EXPECTATIONS

#: the reserved first positional tokens that are verbs, not experiments.
VERBS = ("list", "sources", "describe", "check", "precompile")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Reproduce the figures of 'Effective Instruction Prefetching in "
            "Chip Multiprocessors for Modern Commercial Applications' (HPCA 2005)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="experiment",
        help="experiment names (see 'list'), 'all', or a verb — "
        f"one of {', '.join(VERBS)}",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiment names and exit"
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=sorted(SCALES),
        help="experiment scale (default: $REPRO_PROFILE or 'default')",
    )
    parser.add_argument("--seed", type=int, default=None, help="experiment seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the sweep (default: $REPRO_JOBS or all cores; "
        "1 runs serially in-process)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=(*BACKEND_NAMES, AUTO_BACKEND),
        help="engine backend for every run (default: $REPRO_ENGINE_BACKEND, "
        "else 'reference'); backends are bit-identical — this changes "
        "speed, not results",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="narrate sweep completion as each spec lands (memo/disk/simulated)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        default=None,
        help="exit non-zero if any expectation verdict fails "
        f"(default: ${STRICT_ENV})",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write all results (panels + verdicts) to PATH as JSON",
    )
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        default=None,
        help="also write all results (panels + verdicts) to PATH as Markdown",
    )
    parser.add_argument(
        "--trace-store",
        metavar="DIR",
        default=None,
        help="directory for the compiled-trace store (default: $REPRO_TRACE_DIR "
        "or <result cache>/traces)",
    )
    return parser


def _print_progress(
    done: int, total: int, spec: RunSpec, source: str, seconds: float
) -> None:
    """``--progress`` narration: one line per spec as the sweep lands it."""
    width = len(str(total))
    if source in ("simulated", "retried", "failed"):
        detail = f"{source} in {seconds:.2f}s"
    else:
        detail = f"{source} hit"
    print(f"[{done:>{width}}/{total}] {spec.describe()}: {detail}", flush=True)


def _affected_experiments(
    by_experiment: Dict[str, List[RunSpec]], failed: List[RunSpec]
) -> List[str]:
    """Names of the experiments that read at least one failed spec."""
    failed_set = set(failed)
    return sorted(
        name
        for name, spec_list in by_experiment.items()
        if failed_set.intersection(spec_list)
    )


def _expand_names(tokens: List[str]) -> List[str]:
    """Resolve the positional tokens to experiment names, expanding 'all'."""
    names: List[str] = []
    for token in tokens:
        expanded = experiment_names() if token == "all" else [token]
        for name in expanded:
            if name not in names:
                names.append(name)
    return names


def _strict_enabled(flag: Optional[bool]) -> bool:
    if flag is not None:
        return flag
    return os.environ.get(STRICT_ENV, "").strip().lower() in ("1", "true", "yes", "on")


def _run_list() -> int:
    """The ``list`` verb: one line per catalog entry."""
    width = max(len(name) for name in experiment_names())
    for name in experiment_names():
        experiment = get_experiment(name)
        print(f"{name:<{width}}  {experiment.paper:<40}  {experiment.title}")
    return 0


def _run_sources() -> int:
    """The ``sources`` verb: every workload name a RunSpec can carry."""
    from repro.trace.source import available_sources, source_display_name

    names = available_sources()
    width = max(len(name) for name in names)
    for name in names:
        print(f"{name:<{width}}  {source_display_name(name)}")
    return 0


def _run_describe(names: List[str], scale, seed: Optional[int]) -> int:
    """The ``describe`` verb: print each experiment's full declaration."""
    for name in names:
        try:
            experiment = get_experiment(name)
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        specs = experiment.specs(scale=scale, seed=seed)
        print(f"{experiment.name}: {experiment.title}")
        print(f"  paper:       {experiment.paper}")
        print(f"  tags:        {', '.join(experiment.tags)}")
        print(f"  bench scale: {experiment.bench_scale}")
        if experiment.seeds:
            print(f"  seeds:       {', '.join(str(s) for s in experiment.seeds)}")
        print(f"  grid:        {len(specs)} unique runs "
              f"over axes ({', '.join(axis for axis, _ in experiment.grid.axes)})")
        print(f"  panels:      {len(experiment.panels)}")
        for panel in experiment.panels:
            print(f"    {panel.id}: {panel.title}")
        print(f"  expectations: {len(experiment.expectations)}")
        for expectation in experiment.expectations:
            min_scale = expectation.min_scale or experiment.bench_scale
            print(
                f"    [{expectation.kind}] {expectation.panel}: "
                f"{expectation.describe()} (from scale {min_scale!r})"
            )
        print()
    return 0


def _run_check(names: List[str], scale, seed: Optional[int]) -> int:
    """The ``check`` verb: dry-run cost estimate, nothing simulated."""
    union: List[RunSpec] = []
    estimates = []
    for name in names:
        try:
            experiment = get_experiment(name)
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        estimates.append(estimate_experiment(experiment, scale=scale, seed=seed))
        union.extend(experiment.specs(scale=scale, seed=seed))
    width = max(len(estimate["experiment"]) for estimate in estimates)
    for estimate in estimates:
        print(
            f"{estimate['experiment']:<{width}}  "
            f"{estimate['specs']:>3} specs, {estimate['cached']:>3} cached, "
            f"{estimate['to_simulate']:>3} to simulate; "
            f"{estimate['panels']} panels, "
            f"{estimate['expectations']} expectations"
        )
    deduped = dedupe_specs(union)
    from repro.eval import diskcache

    cached = 0
    if diskcache.enabled():
        cached = sum(1 for spec in deduped if diskcache.path_for(spec).is_file())
    print(
        f"[union: {len(deduped)} unique specs, {cached} cached, "
        f"{len(deduped) - cached} to simulate]"
    )
    return 0


def _run_precompile(names: List[str], scale, seed: Optional[int]) -> int:
    """The ``precompile`` verb: warm the trace store, simulate nothing."""
    from repro.eval.runner import compiled_traces_enabled, precompile_for_specs
    from repro.trace import store as trace_store

    if not compiled_traces_enabled():
        print("error: compiled traces are disabled (REPRO_COMPILED_TRACES)", file=sys.stderr)
        return 2
    try:
        by_experiment = collect_specs_by_experiment(names, scale=scale, seed=seed)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    specs = dedupe_specs(
        spec for spec_list in by_experiment.values() for spec in spec_list
    )
    watch = Stopwatch()
    outcomes = precompile_for_specs(specs)
    counts = {source: 0 for source in ("compiled", "store", "memo")}
    for source in outcomes.values():
        counts[source] = counts.get(source, 0) + 1
    print(
        f"[{len(outcomes)} trace keys for {len(specs)} specs: "
        f"{counts['compiled']} compiled, {counts['store']} already stored, "
        f"{counts['memo']} memoized; {watch.elapsed():.1f}s]"
    )
    print(f"[trace store: {trace_store.trace_dir()} ({trace_store.entry_count()} files)]")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.trace_store:
        os.environ[REPRO_TRACE_DIR] = args.trace_store

    if args.backend:
        # Specs default to "auto", which resolves through this env var in
        # every process — sweep workers inherit it from the parent.
        os.environ[REPRO_ENGINE_BACKEND] = args.backend

    if args.list:
        for name in experiment_names():
            print(name)
        return 0

    tokens = list(args.experiments)
    verb = tokens[0] if tokens and tokens[0] in VERBS else None
    if verb is not None:
        tokens = tokens[1:]

    scale = get_scale(args.scale) if args.scale else None

    if verb == "list":
        return _run_list()
    if verb == "sources":
        return _run_sources()

    if verb in ("describe", "check", "precompile") and not tokens:
        tokens = ["all"]

    if not tokens:
        parser.print_usage()
        print("error: specify an experiment name, a verb, or --list", file=sys.stderr)
        return 2

    names = _expand_names(tokens)

    if verb == "describe":
        return _run_describe(names, scale, args.seed)
    if verb == "check":
        return _run_check(names, scale, args.seed)
    if verb == "precompile":
        return _run_precompile(names, scale, args.seed)

    # Batch-submit every run the selected experiments will read: overlapping
    # configurations simulate once, in parallel, before the panels are built
    # from the shared caches.
    try:
        by_experiment = collect_specs_by_experiment(names, scale=scale, seed=args.seed)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    specs = dedupe_specs(
        spec for spec_list in by_experiment.values() for spec in spec_list
    )
    progress = _print_progress if args.progress else None
    watch = Stopwatch()
    try:
        _, report = run_specs_report(
            specs, jobs=args.jobs, progress=progress, label=",".join(names)
        )
    except ValueError as error:  # e.g. a non-integer $REPRO_JOBS
        print(f"error: {error}", file=sys.stderr)
        return 2
    except SweepError as error:
        # Completed siblings are already persisted; report what failed,
        # which experiments it starves, and how much work was salvaged.
        print(f"error: {error}", file=sys.stderr)
        affected = _affected_experiments(by_experiment, list(error.failures))
        if affected:
            print(f"affected experiments: {', '.join(affected)}", file=sys.stderr)
        print(error.report.summary_json())
        return 1
    print(report.summary_json())
    print(f"[{len(specs)} unique runs ready in {watch.elapsed():.1f}s]")
    print()

    outcomes: List[ExperimentOutcome] = []
    for name in names:
        watch.restart()
        outcome = run_experiment_outcome(name, scale=scale, seed=args.seed)
        elapsed = watch.elapsed()
        outcomes.append(outcome)
        for panel in outcome.panels:
            print(panel.format_table())
            print()
        for verdict in outcome.verdicts:
            print(verdict.format())
        if outcome.verdicts:
            print(f"[{name} {outcome.verdict_summary()}]")
        print(f"[{name} completed in {elapsed:.1f}s]")
        print()

    if args.json:
        from repro.eval.report import outcomes_to_json

        with open(args.json, "w") as handle:
            handle.write(outcomes_to_json(outcomes))
        print(f"[wrote {args.json}]")
    if args.markdown:
        from repro.eval.report import outcomes_to_markdown

        with open(args.markdown, "w") as handle:
            handle.write(outcomes_to_markdown(outcomes))
        print(f"[wrote {args.markdown}]")

    failed = [v for outcome in outcomes for v in outcome.failed_verdicts]
    if failed and _strict_enabled(args.strict):
        print(
            f"error: {len(failed)} expectation verdict(s) failed "
            f"(strict mode)", file=sys.stderr,
        )
        return 1
    return 0


def console_entry() -> int:
    """Entry point for ``repro-experiment`` and ``python -m repro.eval.cli``.

    Swallows the ``BrokenPipeError`` raised when stdout is a closed pipe
    (``repro-experiment list | head``) so truncating the output with
    standard shell tools does not print a traceback.
    """
    try:
        return main()
    except BrokenPipeError:
        # Reopen stdout on devnull so the interpreter's shutdown flush
        # does not raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(console_entry())
