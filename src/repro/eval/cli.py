"""``repro-experiment`` command-line front end.

Usage::

    repro-experiment --list
    repro-experiment fig05 --scale smoke --progress
    repro-experiment fig05 fig06 --scale smoke
    repro-experiment all --scale default --seed 7
    repro-experiment precompile all --scale smoke
    repro-experiment precompile fig01 --trace-store /var/cache/traces

The ``precompile`` verb populates the on-disk compiled-trace store for the
named experiments (default: all) without simulating anything — the CI
warm-up step, or the prelude to a sweep on a shared store directory.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from repro.eval.executor import SweepError, run_specs_report
from repro.eval.profiles import SCALES, get_scale
from repro.eval.registry import (
    collect_specs_by_experiment,
    experiment_names,
    run_experiment,
)
from repro.eval.runspec import RunSpec, dedupe_specs
from repro.util.clock import Stopwatch


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Reproduce the figures of 'Effective Instruction Prefetching in "
            "Chip Multiprocessors for Modern Commercial Applications' (HPCA 2005)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="experiment",
        help="experiment names (see --list), 'all', or the 'precompile' verb "
        "followed by the experiments whose traces to compile (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=sorted(SCALES),
        help="experiment scale (default: $REPRO_PROFILE or 'default')",
    )
    parser.add_argument("--seed", type=int, default=None, help="experiment seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the sweep (default: $REPRO_JOBS or all cores; "
        "1 runs serially in-process)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="narrate sweep completion as each spec lands (memo/disk/simulated)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write all result panels to PATH as JSON",
    )
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        default=None,
        help="also write all result panels to PATH as Markdown tables",
    )
    parser.add_argument(
        "--trace-store",
        metavar="DIR",
        default=None,
        help="directory for the compiled-trace store (default: $REPRO_TRACE_DIR "
        "or <result cache>/traces)",
    )
    return parser


def _print_progress(
    done: int, total: int, spec: RunSpec, source: str, seconds: float
) -> None:
    """``--progress`` narration: one line per spec as the sweep lands it."""
    width = len(str(total))
    if source in ("simulated", "retried", "failed"):
        detail = f"{source} in {seconds:.2f}s"
    else:
        detail = f"{source} hit"
    print(f"[{done:>{width}}/{total}] {spec.describe()}: {detail}", flush=True)


def _affected_experiments(
    by_experiment: Dict[str, List[RunSpec]], failed: List[RunSpec]
) -> List[str]:
    """Names of the experiments that read at least one failed spec."""
    failed_set = set(failed)
    return sorted(
        name
        for name, spec_list in by_experiment.items()
        if failed_set.intersection(spec_list)
    )


def _expand_names(tokens: List[str]) -> List[str]:
    """Resolve the positional tokens to experiment names, expanding 'all'."""
    names: List[str] = []
    for token in tokens:
        expanded = experiment_names() if token == "all" else [token]
        for name in expanded:
            if name not in names:
                names.append(name)
    return names


def _run_precompile(names: List[str], scale, seed: Optional[int]) -> int:
    """The ``precompile`` verb: warm the trace store, simulate nothing."""
    from repro.eval.runner import compiled_traces_enabled, precompile_for_specs
    from repro.trace import store as trace_store

    if not compiled_traces_enabled():
        print("error: compiled traces are disabled (REPRO_COMPILED_TRACES)", file=sys.stderr)
        return 2
    try:
        by_experiment = collect_specs_by_experiment(names, scale=scale, seed=seed)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    specs = dedupe_specs(
        spec for spec_list in by_experiment.values() for spec in spec_list
    )
    watch = Stopwatch()
    outcomes = precompile_for_specs(specs)
    counts = {source: 0 for source in ("compiled", "store", "memo")}
    for source in outcomes.values():
        counts[source] = counts.get(source, 0) + 1
    print(
        f"[{len(outcomes)} trace keys for {len(specs)} specs: "
        f"{counts['compiled']} compiled, {counts['store']} already stored, "
        f"{counts['memo']} memoized; {watch.elapsed():.1f}s]"
    )
    print(f"[trace store: {trace_store.trace_dir()} ({trace_store.entry_count()} files)]")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.trace_store:
        from repro.trace.store import TRACE_DIR_ENV

        os.environ[TRACE_DIR_ENV] = args.trace_store

    if args.list:
        for name in experiment_names():
            print(name)
        return 0

    tokens = list(args.experiments)
    precompile = bool(tokens) and tokens[0] == "precompile"
    if precompile:
        tokens = tokens[1:] or ["all"]

    if not tokens:
        parser.print_usage()
        print("error: specify an experiment name or --list", file=sys.stderr)
        return 2

    names = _expand_names(tokens)
    scale = get_scale(args.scale) if args.scale else None

    if precompile:
        return _run_precompile(names, scale, args.seed)

    # Batch-submit every run the selected experiments will read: overlapping
    # configurations simulate once, in parallel, before the drivers format
    # their panels from the shared caches.
    try:
        by_experiment = collect_specs_by_experiment(names, scale=scale, seed=args.seed)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    specs = dedupe_specs(
        spec for spec_list in by_experiment.values() for spec in spec_list
    )
    progress = _print_progress if args.progress else None
    watch = Stopwatch()
    try:
        _, report = run_specs_report(
            specs, jobs=args.jobs, progress=progress, label=",".join(names)
        )
    except ValueError as error:  # e.g. a non-integer $REPRO_JOBS
        print(f"error: {error}", file=sys.stderr)
        return 2
    except SweepError as error:
        # Completed siblings are already persisted; report what failed,
        # which experiments it starves, and how much work was salvaged.
        print(f"error: {error}", file=sys.stderr)
        affected = _affected_experiments(by_experiment, list(error.failures))
        if affected:
            print(f"affected experiments: {', '.join(affected)}", file=sys.stderr)
        print(error.report.summary_json())
        return 1
    print(report.summary_json())
    print(f"[{len(specs)} unique runs ready in {watch.elapsed():.1f}s]")
    print()

    all_panels = []
    for name in names:
        watch.restart()
        try:
            panels = run_experiment(name, scale=scale, seed=args.seed)
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        elapsed = watch.elapsed()
        all_panels.extend(panels)
        for panel in panels:
            print(panel.format_table())
            print()
        print(f"[{name} completed in {elapsed:.1f}s]")
        print()

    if args.json:
        from repro.eval.report import panels_to_json

        with open(args.json, "w") as handle:
            handle.write(panels_to_json(all_panels))
        print(f"[wrote {args.json}]")
    if args.markdown:
        from repro.eval.report import panels_to_markdown

        with open(args.markdown, "w") as handle:
            handle.write(panels_to_markdown(all_panels))
        print(f"[wrote {args.markdown}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
