"""``repro-experiment`` command-line front end.

Usage::

    repro-experiment --list
    repro-experiment fig05 --scale smoke
    repro-experiment all --scale default --seed 7
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.eval.executor import run_specs
from repro.eval.profiles import SCALES, get_scale
from repro.eval.registry import collect_specs, experiment_names, run_experiment
from repro.util.clock import Stopwatch


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Reproduce the figures of 'Effective Instruction Prefetching in "
            "Chip Multiprocessors for Modern Commercial Applications' (HPCA 2005)."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment name (see --list), or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=sorted(SCALES),
        help="experiment scale (default: $REPRO_PROFILE or 'default')",
    )
    parser.add_argument("--seed", type=int, default=None, help="experiment seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the sweep (default: $REPRO_JOBS or all cores; "
        "1 runs serially in-process)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write all result panels to PATH as JSON",
    )
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        default=None,
        help="also write all result panels to PATH as Markdown tables",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name in experiment_names():
            print(name)
        return 0

    if args.experiment is None:
        parser.print_usage()
        print("error: specify an experiment name or --list", file=sys.stderr)
        return 2

    names = experiment_names() if args.experiment == "all" else [args.experiment]
    scale = get_scale(args.scale) if args.scale else None

    # Batch-submit every run the selected experiments will read: overlapping
    # configurations simulate once, in parallel, before the drivers format
    # their panels from the shared caches.
    try:
        specs = collect_specs(names, scale=scale, seed=args.seed)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    watch = Stopwatch()
    try:
        run_specs(specs, jobs=args.jobs)
    except ValueError as error:  # e.g. a non-integer $REPRO_JOBS
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"[{len(specs)} unique runs ready in {watch.elapsed():.1f}s]")
    print()

    all_panels = []
    for name in names:
        watch.restart()
        try:
            panels = run_experiment(name, scale=scale, seed=args.seed)
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        elapsed = watch.elapsed()
        all_panels.extend(panels)
        for panel in panels:
            print(panel.format_table())
            print()
        print(f"[{name} completed in {elapsed:.1f}s]")
        print()

    if args.json:
        from repro.eval.report import panels_to_json

        with open(args.json, "w") as handle:
            handle.write(panels_to_json(all_panels))
        print(f"[wrote {args.json}]")
    if args.markdown:
        from repro.eval.report import panels_to_markdown

        with open(args.markdown, "w") as handle:
            handle.write(panels_to_markdown(all_panels))
        print(f"[wrote {args.markdown}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
