"""Registry of all experiment drivers (figures + ablations)."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.eval import (
    ablations,
    comparisons,
    replication,
    fig01,
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
)
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale

#: experiment name → driver returning a list of result panels.
EXPERIMENTS: Dict[str, Callable[..., List[ExperimentResult]]] = {
    "fig01": fig01.run,
    "fig02": fig02.run,
    "fig03": fig03.run,
    "fig04": fig04.run,
    "fig05": fig05.run,
    "fig06": fig06.run,
    "fig07": fig07.run,
    "fig08": fig08.run,
    "fig09": fig09.run,
    "fig10": fig10.run,
    "ablation-filtering": ablations.run_filtering,
    "ablation-eviction-counter": ablations.run_eviction_counter,
    "ablation-prefetch-ahead": ablations.run_prefetch_ahead,
    "ablation-probe-ahead": ablations.run_probe_ahead,
    "ablation-queue-discipline": ablations.run_queue_discipline,
    "ablation-table-design": ablations.run_single_vs_multi_target,
    "ablation-useless-hint": ablations.run_useless_hint_filter,
    "ablation-inclusion": ablations.run_inclusion,
    "ablation-replacement": ablations.run_replacement,
    "comparison-alternatives": comparisons.run_alternatives,
    "comparison-bandwidth": comparisons.run_bandwidth_sensitivity,
    "comparison-core-scaling": comparisons.run_core_scaling,
    "comparison-execution-based": comparisons.run_execution_based,
    "comparison-software-prefetch": comparisons.run_software_prefetch,
    "replication-check": replication.run_replication_check,
}


def experiment_names() -> List[str]:
    return list(EXPERIMENTS)


def run_experiment(
    name: str, scale: Optional[ExperimentScale] = None, seed: Optional[int] = None
) -> List[ExperimentResult]:
    """Run one registered experiment by name."""
    try:
        driver = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {experiment_names()}"
        ) from None
    kwargs = {}
    if scale is not None:
        kwargs["scale"] = scale
    if seed is not None:
        kwargs["seed"] = seed
    return driver(**kwargs)
