"""Catalog-backed experiment registry.

Every experiment is declared exactly once, as an
:class:`~repro.eval.experiment.Experiment` in a
:mod:`repro.eval.catalog` module; this registry is a thin introspection
layer over :data:`repro.eval.catalog.CATALOG`.  The historical dual
``EXPERIMENTS``/``EXPERIMENT_SPECS`` dicts are gone — the grid a driver
*runs* and the specs it *declares* are the same object by construction,
so they can no longer drift apart.

:func:`collect_specs` unions the spec sets of many experiments so the
CLI can batch-submit one deduplicated sweep — overlapping runs (e.g.
Figures 5, 6 and 7 share all of theirs) are simulated once.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.eval.catalog import CATALOG
from repro.eval.experiment import Experiment, ExperimentOutcome
from repro.eval.experiment import run_experiment as _run_experiment
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale
from repro.eval.runspec import RunSpec, dedupe_specs


def experiment_names() -> List[str]:
    """Every declared experiment name, in catalog (registry) order."""
    return list(CATALOG)


def get_experiment(name: str) -> Experiment:
    """Look up one declaration by name."""
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {experiment_names()}"
        ) from None


def collect_specs_by_experiment(
    names: List[str],
    scale: Optional[ExperimentScale] = None,
    seed: Optional[int] = None,
) -> Dict[str, List[RunSpec]]:
    """Per-experiment RunSpec lists (each deduplicated, order preserved).

    The sweep observability surface uses this to attribute a spec — a
    progress line, a failure in a :class:`~repro.eval.executor.SweepError`
    — back to the experiments that read it.  Unknown names raise
    ``KeyError``.
    """
    return {
        name: get_experiment(name).specs(scale=scale, seed=seed) for name in names
    }


def collect_specs(
    names: List[str],
    scale: Optional[ExperimentScale] = None,
    seed: Optional[int] = None,
) -> List[RunSpec]:
    """Deduplicated union of the RunSpecs the named experiments will read."""
    specs: List[RunSpec] = []
    for spec_list in collect_specs_by_experiment(names, scale=scale, seed=seed).values():
        specs.extend(spec_list)
    return dedupe_specs(specs)


def run_experiment_outcome(
    name: str,
    scale: Optional[ExperimentScale] = None,
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
    progress: Optional[Callable[..., None]] = None,
) -> ExperimentOutcome:
    """Run one declared experiment through the generic pathway."""
    return _run_experiment(
        get_experiment(name), scale=scale, seed=seed, jobs=jobs, progress=progress
    )


def run_experiment(
    name: str, scale: Optional[ExperimentScale] = None, seed: Optional[int] = None
) -> List[ExperimentResult]:
    """Run one experiment by name and return its panels.

    Compatibility shim over :func:`run_experiment_outcome` for callers
    that only want the tables (the outcome additionally carries the
    expectation verdicts and the sweep report).
    """
    return run_experiment_outcome(name, scale=scale, seed=seed).panels
