"""Registry of all experiment drivers (figures + ablations).

Each experiment is registered twice: ``EXPERIMENTS`` maps the name to its
driver (produces the result panels), and ``EXPERIMENT_SPECS`` maps it to a
function declaring every :class:`~repro.eval.runspec.RunSpec` the driver
will read.  :func:`collect_specs` unions the spec lists of many experiments
so the CLI can batch-submit one deduplicated sweep — overlapping runs
(e.g. Figures 5, 6 and 7 share all of theirs) are simulated once.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.eval import (
    ablations,
    comparisons,
    fig01,
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    replication,
)
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale
from repro.eval.runspec import RunSpec, dedupe_specs

#: experiment name → driver returning a list of result panels.
EXPERIMENTS: Dict[str, Callable[..., List[ExperimentResult]]] = {
    "fig01": fig01.run,
    "fig02": fig02.run,
    "fig03": fig03.run,
    "fig04": fig04.run,
    "fig05": fig05.run,
    "fig06": fig06.run,
    "fig07": fig07.run,
    "fig08": fig08.run,
    "fig09": fig09.run,
    "fig10": fig10.run,
    "ablation-filtering": ablations.run_filtering,
    "ablation-eviction-counter": ablations.run_eviction_counter,
    "ablation-prefetch-ahead": ablations.run_prefetch_ahead,
    "ablation-probe-ahead": ablations.run_probe_ahead,
    "ablation-queue-discipline": ablations.run_queue_discipline,
    "ablation-table-design": ablations.run_single_vs_multi_target,
    "ablation-useless-hint": ablations.run_useless_hint_filter,
    "ablation-inclusion": ablations.run_inclusion,
    "ablation-replacement": ablations.run_replacement,
    "comparison-alternatives": comparisons.run_alternatives,
    "comparison-bandwidth": comparisons.run_bandwidth_sensitivity,
    "comparison-core-scaling": comparisons.run_core_scaling,
    "comparison-execution-based": comparisons.run_execution_based,
    "comparison-software-prefetch": comparisons.run_software_prefetch,
    "replication-check": replication.run_replication_check,
}


#: experiment name → function declaring every RunSpec the driver reads.
EXPERIMENT_SPECS: Dict[str, Callable[..., List[RunSpec]]] = {
    "fig01": fig01.specs,
    "fig02": fig02.specs,
    "fig03": fig03.specs,
    "fig04": fig04.specs,
    "fig05": fig05.specs,
    "fig06": fig06.specs,
    "fig07": fig07.specs,
    "fig08": fig08.specs,
    "fig09": fig09.specs,
    "fig10": fig10.specs,
    "ablation-filtering": ablations.specs_filtering,
    "ablation-eviction-counter": ablations.specs_eviction_counter,
    "ablation-prefetch-ahead": ablations.specs_prefetch_ahead,
    "ablation-probe-ahead": ablations.specs_probe_ahead,
    "ablation-queue-discipline": ablations.specs_queue_discipline,
    "ablation-table-design": ablations.specs_single_vs_multi_target,
    "ablation-useless-hint": ablations.specs_useless_hint_filter,
    "ablation-inclusion": ablations.specs_inclusion,
    "ablation-replacement": ablations.specs_replacement,
    "comparison-alternatives": comparisons.specs_alternatives,
    "comparison-bandwidth": comparisons.specs_bandwidth_sensitivity,
    "comparison-core-scaling": comparisons.specs_core_scaling,
    "comparison-execution-based": comparisons.specs_execution_based,
    "comparison-software-prefetch": comparisons.specs_software_prefetch,
    "replication-check": replication.specs_replication_check,
}


def experiment_names() -> List[str]:
    return list(EXPERIMENTS)


def collect_specs_by_experiment(
    names: List[str],
    scale: Optional[ExperimentScale] = None,
    seed: Optional[int] = None,
) -> Dict[str, List[RunSpec]]:
    """Per-experiment RunSpec lists (each deduplicated, order preserved).

    The sweep observability surface uses this to attribute a spec — a
    progress line, a failure in a :class:`~repro.eval.executor.SweepError`
    — back to the experiments that read it.  Experiments registered in
    :data:`EXPERIMENTS` without a matching :data:`EXPERIMENT_SPECS` entry
    (e.g. third-party drivers added at runtime) declare no specs up front —
    their driver simulates lazily.  Truly unknown names raise ``KeyError``.
    """
    by_experiment: Dict[str, List[RunSpec]] = {}
    for name in names:
        spec_fn = EXPERIMENT_SPECS.get(name)
        if spec_fn is None:
            if name in EXPERIMENTS:
                by_experiment[name] = []
                continue
            raise KeyError(
                f"unknown experiment {name!r}; available: {experiment_names()}"
            )
        kwargs: Dict[str, Any] = {}
        if scale is not None:
            kwargs["scale"] = scale
        if seed is not None:
            kwargs["seed"] = seed
        by_experiment[name] = dedupe_specs(spec_fn(**kwargs))
    return by_experiment


def collect_specs(
    names: List[str],
    scale: Optional[ExperimentScale] = None,
    seed: Optional[int] = None,
) -> List[RunSpec]:
    """Deduplicated union of the RunSpecs the named experiments will read."""
    specs: List[RunSpec] = []
    for spec_list in collect_specs_by_experiment(names, scale=scale, seed=seed).values():
        specs.extend(spec_list)
    return dedupe_specs(specs)


def run_experiment(
    name: str, scale: Optional[ExperimentScale] = None, seed: Optional[int] = None
) -> List[ExperimentResult]:
    """Run one registered experiment by name."""
    try:
        driver = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {experiment_names()}"
        ) from None
    kwargs: Dict[str, Any] = {}
    if scale is not None:
        kwargs["scale"] = scale
    if seed is not None:
        kwargs["seed"] = seed
    return driver(**kwargs)
