"""Figure 8 — performance gains with L2-bypass prefetches.

Paper: "Performance gains achieved by different HW prefetching schemes
(with L2 cache bypass prefetches); (i) single core and (ii) 4-way CMP."

Expected shape (paper §7):

- compared to Figure 6(ii), the CMP discontinuity improvement rises from
  1.05-1.28× to 1.08-1.37×;
- the aggressive prefetchers gain more on the CMP than on the single core.
"""

from __future__ import annotations

from typing import List, Optional

from repro.eval.executor import run_specs
from repro.eval.fig05 import SCHEMES
from repro.eval.fig06 import perf_panel
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale
from repro.eval.runner import DEFAULT_SEED
from repro.eval.runspec import RunSpec
from repro.trace.synth.workloads import workload_names


def specs(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    """Every run Figure 8 reads: no-prefetch baselines plus the Figure 5
    schemes under the bypass install policy."""
    base = workload_names()
    out = []
    for workloads, n_cores in ((base, 1), (base + ["mix"], 4)):
        for workload in workloads:
            out.append(RunSpec.create(workload, n_cores, "none", scale=scale, seed=seed))
            for scheme in SCHEMES:
                out.append(
                    RunSpec.create(
                        workload, n_cores, scheme, scale=scale, l2_policy="bypass", seed=seed
                    )
                )
    return out


def run(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """Run Figure 8; returns panels (i) and (ii)."""
    run_specs(specs(scale, seed), label="fig08")
    base = workload_names()
    note = "bypass install (§7): pollution removed; paper: 1.08-1.37X on CMP"
    return [
        perf_panel(
            "fig08i",
            "Prefetcher speedups, L2-bypass install (single core)",
            base,
            1,
            "bypass",
            scale,
            seed,
            note=note,
        ),
        perf_panel(
            "fig08ii",
            "Prefetcher speedups, L2-bypass install (4-way CMP)",
            base + ["mix"],
            4,
            "bypass",
            scale,
            seed,
            note=note,
        ),
    ]
