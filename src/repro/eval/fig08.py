"""Figure 8 — performance gains with L2-bypass prefetches.

Paper: "Performance gains achieved by different HW prefetching schemes
(with L2 cache bypass prefetches); (i) single core and (ii) 4-way CMP."

Expected shape (paper §7):

- compared to Figure 6(ii), the CMP discontinuity improvement rises from
  1.05-1.28× to 1.08-1.37×;
- the aggressive prefetchers gain more on the CMP than on the single core.
"""

from __future__ import annotations

from typing import List, Optional

from repro.eval.fig06 import perf_panel
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale
from repro.eval.runner import DEFAULT_SEED
from repro.trace.synth.workloads import workload_names


def run(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """Run Figure 8; returns panels (i) and (ii)."""
    base = workload_names()
    note = "bypass install (§7): pollution removed; paper: 1.08-1.37X on CMP"
    return [
        perf_panel(
            "fig08i",
            "Prefetcher speedups, L2-bypass install (single core)",
            base,
            1,
            "bypass",
            scale,
            seed,
            note=note,
        ),
        perf_panel(
            "fig08ii",
            "Prefetcher speedups, L2-bypass install (4-way CMP)",
            base + ["mix"],
            4,
            "bypass",
            scale,
            seed,
            note=note,
        ),
    ]
