"""Beyond-the-paper comparisons against the alternative prefetching
styles the paper's §2 surveys, plus two sensitivity extensions.

Six experiments: every prefetching style head-to-head on the 4-way CMP,
the fetch-directed prefetcher across BTB sizes (the §2.2 predictor-state
argument), an off-chip bandwidth sweep exposing the §7 accuracy
crossover, a core-count scaling extension, the §2.3 cooperative software
split vs. the all-hardware scheme, and all six prefetcher families at
matched storage budgets (``repro.prefetch.budget``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.eval.catalog._util import BASE, workload_axis
from repro.eval.experiment import (
    Band,
    Compare,
    Experiment,
    ExperimentContext,
    Grid,
    PanelDef,
    Runs,
)
from repro.eval.runspec import RunSpec
from repro.prefetch.budget import matched_overrides
from repro.prefetch.registry import prefetcher_display_name

# --------------------------------------------------------------------------
# all prefetching styles head-to-head

#: head-to-head variant set: (label, scheme or None for software, overrides).
ALTERNATIVE_VARIANTS: Tuple[Tuple[str, Optional[str], Dict[str, Any]], ...] = (
    ("Next-4-lines (tagged)", "next-4-line", {}),
    ("Target prefetcher", "target", {}),
    ("Markov (multi-target)", "markov", {}),
    ("Fetch-directed (1K BTB)", "fdp", {"btb_entries": 1024}),
    ("Software + next-4-line", None, {}),  # §2.3 software prefetcher
    ("Discontinuity (paper)", "discontinuity", {}),
)


def _alternatives_build(ctx: ExperimentContext, workload: str) -> List[RunSpec]:
    return [ctx.spec(workload, 4)] + [
        ctx.spec(
            workload,
            4,
            scheme or "none",
            l2_policy="bypass",
            prefetcher_overrides=overrides,
            software_prefetch=scheme is None,
        )
        for _, scheme, overrides in ALTERNATIVE_VARIANTS
    ]


def _alternative_result(runs: Runs, key: Any, workload: Any) -> Any:
    scheme, overrides = key
    return runs.result(
        workload,
        4,
        scheme or "none",
        l2_policy="bypass",
        prefetcher_overrides=overrides,
        software_prefetch=scheme is None,
    )


def _alternative_speedup(runs: Runs, key: Any, workload: Any) -> float:
    scheme, overrides = key
    return runs.speedup(
        workload,
        4,
        scheme or "none",
        l2_policy="bypass",
        prefetcher_overrides=overrides,
        software_prefetch=scheme is None,
    )


def _alternative_coverage(runs: Runs, key: Any, workload: Any) -> float:
    return 100.0 * _alternative_result(runs, key, workload).l1i_coverage


def _alternative_accuracy(runs: Runs, key: Any, workload: Any) -> float:
    return 100.0 * _alternative_result(runs, key, workload).prefetch_accuracy


_ALTERNATIVE_ROWS = tuple(
    (label, (scheme, overrides)) for label, scheme, overrides in ALTERNATIVE_VARIANTS
)


def _alternatives_margin(rival: str) -> Compare:
    return Compare(
        panel="comparison-alternatives-speedup",
        row="Discontinuity (paper)",
        other_row=rival,
        op=">=",
        offset=-0.02,
        note=f"discontinuity stays competitive with {rival}",
    )


COMPARISON_ALTERNATIVES = Experiment(
    name="comparison-alternatives",
    title="All prefetching styles head-to-head (4-way CMP, bypass)",
    paper="§2 (prefetching-style survey)",
    tags=("comparison", "styles"),
    grid=Grid(axes=(("workload", BASE),), build=_alternatives_build),
    panels=(
        PanelDef(
            id="comparison-alternatives-speedup",
            title="All prefetching styles: speedup (4-way CMP, bypass)",
            rows=_ALTERNATIVE_ROWS,
            cols=workload_axis(BASE),
            cell=_alternative_speedup,
            unit="speedup, X",
        ),
        PanelDef(
            id="comparison-alternatives-coverage",
            title="All prefetching styles: L1 coverage (4-way CMP)",
            rows=_ALTERNATIVE_ROWS,
            cols=workload_axis(BASE),
            cell=_alternative_coverage,
            unit="% coverage",
            fmt=".1f",
        ),
        PanelDef(
            id="comparison-alternatives-accuracy",
            title="All prefetching styles: accuracy (4-way CMP)",
            rows=_ALTERNATIVE_ROWS,
            cols=workload_axis(BASE),
            cell=_alternative_accuracy,
            unit="% useful/issued",
            fmt=".1f",
        ),
    ),
    expectations=(
        _alternatives_margin("Next-4-lines (tagged)"),
        _alternatives_margin("Target prefetcher"),
        _alternatives_margin("Fetch-directed (1K BTB)"),
        Compare(
            panel="comparison-alternatives-coverage",
            row="Discontinuity (paper)",
            other_row="Target prefetcher",
            op=">",
            note="discontinuity covers more misses than the target prefetcher",
        ),
    ),
)

# --------------------------------------------------------------------------
# §2.2 — fetch-directed prefetching vs BTB size

#: BTB sweep for the execution-based comparison.
FDP_BTB_SIZES = (1024, 4096, 16384, 65536)

_FDP_NOTE = (
    "paper §2.2: execution-based prefetching needs impractically large "
    "predictor state on commercial footprints"
)


def _fdp_build(ctx: ExperimentContext, workload: str) -> List[RunSpec]:
    return (
        [ctx.spec(workload, 4)]
        + [
            ctx.spec(
                workload,
                4,
                "fdp",
                l2_policy="bypass",
                prefetcher_overrides={"btb_entries": btb},
            )
            for btb in FDP_BTB_SIZES
        ]
        + [ctx.spec(workload, 4, "discontinuity", l2_policy="bypass")]
    )


def _fdp_result(runs: Runs, btb: Any, workload: Any) -> Any:
    if btb is None:
        return runs.result(workload, 4, "discontinuity", l2_policy="bypass")
    return runs.result(
        workload, 4, "fdp", l2_policy="bypass", prefetcher_overrides={"btb_entries": btb}
    )


def _fdp_coverage(runs: Runs, btb: Any, workload: Any) -> float:
    return 100.0 * _fdp_result(runs, btb, workload).l1i_coverage


def _fdp_speedup(runs: Runs, btb: Any, workload: Any) -> float:
    if btb is None:
        return runs.speedup(workload, 4, "discontinuity", l2_policy="bypass")
    return runs.speedup(
        workload, 4, "fdp", l2_policy="bypass", prefetcher_overrides={"btb_entries": btb}
    )


_FDP_ROWS = tuple((f"FDP {btb}-entry BTB", btb) for btb in FDP_BTB_SIZES) + (
    ("Discontinuity 8K (paper)", None),
)

COMPARISON_EXECUTION_BASED = Experiment(
    name="comparison-execution-based",
    title="Fetch-directed prefetching vs BTB size (4-way CMP)",
    paper="§2.2 (execution-based prefetching)",
    tags=("comparison", "fdp"),
    grid=Grid(axes=(("workload", BASE),), build=_fdp_build),
    panels=(
        PanelDef(
            id="comparison-fdp-coverage",
            title="Fetch-directed prefetching: L1 coverage vs BTB size (CMP)",
            rows=_FDP_ROWS,
            cols=workload_axis(BASE),
            cell=_fdp_coverage,
            unit="% coverage",
            fmt=".1f",
            notes=(_FDP_NOTE,),
        ),
        PanelDef(
            id="comparison-fdp-speedup",
            title="Fetch-directed prefetching: speedup vs BTB size (CMP)",
            rows=_FDP_ROWS,
            cols=workload_axis(BASE),
            cell=_fdp_speedup,
            unit="speedup, X",
            notes=(_FDP_NOTE,),
        ),
    ),
    expectations=(
        Compare(
            panel="comparison-fdp-coverage",
            row="FDP 65536-entry BTB",
            other_row="FDP 1024-entry BTB",
            op=">=",
            offset=-2.0,
            note="coverage grows (or holds) with predictor state",
        ),
        Compare(
            panel="comparison-fdp-coverage",
            row="Discontinuity 8K (paper)",
            other_row="FDP 65536-entry BTB",
            op=">",
            offset=5.0,
            note="an 8K-entry discontinuity table beats even a 64K-entry BTB",
        ),
    ),
)

# --------------------------------------------------------------------------
# §7 — off-chip bandwidth sensitivity (DB)

#: off-chip bandwidth sweep (GB/s); 20 is the paper's CMP default.
BANDWIDTH_SWEEP_GBPS = (20.0, 10.0, 6.0, 4.0)

#: the accuracy-ordered schemes whose crossover the sweep exposes.
BANDWIDTH_SCHEMES = ("next-4-line", "discontinuity", "discontinuity-2nl")


def _bandwidth_build(ctx: ExperimentContext, gbps: float) -> List[RunSpec]:
    return [ctx.spec("db", 4, offchip_gbps=gbps)] + [
        ctx.spec("db", 4, scheme, l2_policy="bypass", offchip_gbps=gbps)
        for scheme in BANDWIDTH_SCHEMES
    ]


def _bandwidth_speedup(runs: Runs, scheme: Any, gbps: Any) -> float:
    return runs.speedup(
        "db",
        4,
        scheme,
        base={"offchip_gbps": gbps},
        l2_policy="bypass",
        offchip_gbps=gbps,
    )


COMPARISON_BANDWIDTH = Experiment(
    name="comparison-bandwidth",
    title="Speedup vs off-chip bandwidth (DB, 4-way CMP, bypass)",
    paper="§7 (bandwidth-constrained operating point)",
    tags=("comparison", "bandwidth"),
    grid=Grid(axes=(("gbps", BANDWIDTH_SWEEP_GBPS),), build=_bandwidth_build),
    panels=(
        PanelDef(
            id="comparison-bandwidth",
            title="Speedup vs off-chip bandwidth (DB, 4-way CMP, bypass)",
            rows=tuple(
                (prefetcher_display_name(s), s) for s in BANDWIDTH_SCHEMES
            ),
            cols=tuple(
                (f"{gbps:g} GB/s", gbps) for gbps in BANDWIDTH_SWEEP_GBPS
            ),
            cell=_bandwidth_speedup,
            unit="speedup, X",
            notes=(
                "paper §7: under constrained bandwidth the 2NL discontinuity "
                "prefetcher is the better choice — the crossover appears as "
                "the link tightens",
            ),
        ),
    ),
    expectations=(
        Compare(
            panel="comparison-bandwidth",
            row="Discontinuity",
            other_row="Discont (2NL)",
            op=">=",
            offset=-0.02,
            col="20 GB/s",
            note="at full bandwidth the 4-line variant is at least as good",
        ),
        Compare(
            panel="comparison-bandwidth",
            row="Discont (2NL)",
            other_row="Discontinuity",
            op=">",
            col="6 GB/s",
            note="the crossover: 2NL wins once the link tightens",
        ),
        Compare(
            panel="comparison-bandwidth",
            row="Discont (2NL)",
            other_row="Next-4-lines (tagged)",
            op=">",
            col="6 GB/s",
        ),
    ),
    bench_scale="default",
)

# --------------------------------------------------------------------------
# extension — core-count scaling (DB)

#: core counts for the scaling extension (paper evaluates 1 and 4).
CORE_SCALING = (1, 2, 4, 8)


def _core_scaling_build(ctx: ExperimentContext, n_cores: int) -> List[RunSpec]:
    return [
        ctx.spec("db", n_cores),
        ctx.spec("db", n_cores, "discontinuity", l2_policy="bypass"),
    ]


def _core_scaling_cell(runs: Runs, metric: Any, n_cores: Any) -> float:
    if metric == "speedup":
        return runs.speedup("db", n_cores, "discontinuity", l2_policy="bypass")
    base = runs.result("db", n_cores)
    rate = base.l2i_miss_rate if metric == "l2i" else base.l2d_miss_rate
    return 100.0 * rate


COMPARISON_CORE_SCALING = Experiment(
    name="comparison-core-scaling",
    title="Baseline L2 miss rates and discontinuity speedup vs cores (DB)",
    paper="extension beyond the paper's 1/4-core points",
    tags=("comparison", "scaling"),
    grid=Grid(axes=(("n_cores", CORE_SCALING),), build=_core_scaling_build),
    panels=(
        PanelDef(
            id="comparison-core-scaling",
            title="Baseline L2 miss rates and discontinuity speedup vs cores (DB)",
            rows=(
                ("Baseline L2I (% per instr)", "l2i"),
                ("Baseline L2D (% per instr)", "l2d"),
                ("Discontinuity speedup (X)", "speedup"),
            ),
            cols=tuple(
                (f"{n} core{'s' if n > 1 else ''}", n) for n in CORE_SCALING
            ),
            cell=_core_scaling_cell,
            notes=(
                "extension beyond the paper's 1/4-core points; bandwidth "
                "scaled per SystemConfig.resolve_bandwidth",
            ),
        ),
    ),
    expectations=(
        Compare(
            panel="comparison-core-scaling",
            row="Baseline L2I (% per instr)",
            col="4 cores",
            other_col="1 core",
            op=">",
            note="shared-L2 instruction pressure grows with core count",
        ),
        Compare(
            panel="comparison-core-scaling",
            row="Baseline L2I (% per instr)",
            col="8 cores",
            other_col="2 cores",
            op=">",
        ),
        Compare(
            panel="comparison-core-scaling",
            row="Baseline L2D (% per instr)",
            col="8 cores",
            other_col="4 cores",
            op=">",
        ),
        Compare(
            panel="comparison-core-scaling",
            row="Baseline L2D (% per instr)",
            col="4 cores",
            other_col="1 core",
            op=">",
        ),
        Band(
            panel="comparison-core-scaling",
            row="Discontinuity speedup (X)",
            lo=1.1,
            note="the prefetcher pays off at every core count",
        ),
    ),
    bench_scale="default",
)

# --------------------------------------------------------------------------
# §2.3 — cooperative software prefetching vs the hardware scheme

_SWPF_VARIANTS = (
    ("Software + next-4-line", ("none", True)),
    ("Next-4-line only", ("next-4-line", False)),
    ("Discontinuity (paper)", ("discontinuity", False)),
)


def _swpf_build(ctx: ExperimentContext, workload: str) -> List[RunSpec]:
    return [ctx.spec(workload, 4)] + [
        ctx.spec(
            workload, 4, scheme, l2_policy="bypass", software_prefetch=software
        )
        for _, (scheme, software) in _SWPF_VARIANTS
    ]


def _swpf_speedup(runs: Runs, key: Any, workload: Any) -> float:
    scheme, software = key
    return runs.speedup(
        workload, 4, scheme, l2_policy="bypass", software_prefetch=software
    )


def _swpf_coverage(runs: Runs, key: Any, workload: Any) -> float:
    scheme, software = key
    result = runs.result(
        workload, 4, scheme, l2_policy="bypass", software_prefetch=software
    )
    return 100.0 * result.l1i_coverage


COMPARISON_SOFTWARE_PREFETCH = Experiment(
    name="comparison-software-prefetch",
    title="Software vs hardware non-sequential prefetching (4-way CMP)",
    paper="§2.3 (software prefetching)",
    tags=("comparison", "software"),
    grid=Grid(axes=(("workload", BASE),), build=_swpf_build),
    panels=(
        PanelDef(
            id="comparison-swpf-speedup",
            title="Software vs hardware non-sequential prefetching (CMP)",
            rows=_SWPF_VARIANTS,
            cols=workload_axis(BASE),
            cell=_swpf_speedup,
            unit="speedup, X",
            notes=(
                "software plan uses perfect profile feedback (generous to §2.3)",
            ),
        ),
        PanelDef(
            id="comparison-swpf-coverage",
            title="Software vs hardware: L1 coverage (CMP)",
            rows=_SWPF_VARIANTS,
            cols=workload_axis(BASE),
            cell=_swpf_coverage,
            unit="% coverage",
            fmt=".1f",
        ),
    ),
    expectations=(
        Compare(
            panel="comparison-swpf-speedup",
            row="Software + next-4-line",
            other_row="Next-4-line only",
            op=">",
            offset=-0.02,
            note="adding software hints to the sequential scheme helps",
        ),
        Compare(
            panel="comparison-swpf-speedup",
            row="Discontinuity (paper)",
            other_row="Software + next-4-line",
            op=">",
            offset=-0.08,
            note="all-hardware discontinuity matches the cooperative split",
        ),
    ),
)

# --------------------------------------------------------------------------
# all six prefetcher families at matched storage budgets

#: the six families of the budget-matched sweep: one representative per
#: style (sequential is the ~stateless floor every budget admits).
BUDGET_FAMILIES: Tuple[str, ...] = (
    "next-4-line",
    "discontinuity",
    "markov",
    "fdp",
    "mana",
    "shadow",
)

#: storage budgets (bytes).  16 KiB forces every table-based family well
#: below its paper-default sizing; 96 KiB admits the discontinuity
#: table's paper default (8192 entries = 66 KB) with headroom for the
#: predictor-directed families' gshare arrays.
BUDGET_POINTS: Tuple[Tuple[str, int], ...] = (
    ("16KiB", 16 * 1024),
    ("96KiB", 96 * 1024),
)

_BUDGET_ROWS = tuple(
    (prefetcher_display_name(name), name) for name in BUDGET_FAMILIES
)


def _budget_build(ctx: ExperimentContext, workload: str) -> List[RunSpec]:
    return [ctx.spec(workload, 4)] + [
        ctx.spec(
            workload,
            4,
            name,
            l2_policy="bypass",
            prefetcher_overrides=matched_overrides(name, budget_bytes),
        )
        for _, budget_bytes in BUDGET_POINTS
        for name in BUDGET_FAMILIES
    ]


def _budget_result(runs: Runs, name: str, workload: Any, budget_bytes: int) -> Any:
    return runs.result(
        workload,
        4,
        name,
        l2_policy="bypass",
        prefetcher_overrides=matched_overrides(name, budget_bytes),
    )


def _budget_speedup(budget_bytes: int):
    def cell(runs: Runs, name: Any, workload: Any) -> float:
        return runs.speedup(
            workload,
            4,
            name,
            l2_policy="bypass",
            prefetcher_overrides=matched_overrides(name, budget_bytes),
        )

    return cell


def _budget_coverage(budget_bytes: int):
    def cell(runs: Runs, name: Any, workload: Any) -> float:
        return 100.0 * _budget_result(runs, name, workload, budget_bytes).l1i_coverage

    return cell


def _budget_accuracy(budget_bytes: int):
    def cell(runs: Runs, name: Any, workload: Any) -> float:
        return 100.0 * _budget_result(
            runs, name, workload, budget_bytes
        ).prefetch_accuracy

    return cell


COMPARISON_BUDGET_MATCHED = Experiment(
    name="comparison-budget-matched",
    title="Six prefetcher families at matched storage budgets (4-way CMP)",
    paper="§2 + §4 (storage-matched family comparison)",
    tags=("comparison", "budget"),
    grid=Grid(axes=(("workload", BASE),), build=_budget_build),
    panels=(
        PanelDef(
            id="comparison-budget-speedup-16k",
            title="Family speedup at a 16 KiB storage budget (CMP, bypass)",
            rows=_BUDGET_ROWS,
            cols=workload_axis(BASE),
            cell=_budget_speedup(16 * 1024),
            unit="speedup, X",
            notes=("largest power-of-two sizing fitting 16 KiB per family",),
        ),
        PanelDef(
            id="comparison-budget-speedup-96k",
            title="Family speedup at a 96 KiB storage budget (CMP, bypass)",
            rows=_BUDGET_ROWS,
            cols=workload_axis(BASE),
            cell=_budget_speedup(96 * 1024),
            unit="speedup, X",
            notes=("96 KiB admits the paper-default discontinuity table",),
        ),
        PanelDef(
            id="comparison-budget-coverage-96k",
            title="Family L1 coverage at 96 KiB (CMP)",
            rows=_BUDGET_ROWS,
            cols=workload_axis(BASE),
            cell=_budget_coverage(96 * 1024),
            unit="% coverage",
            fmt=".1f",
        ),
        PanelDef(
            id="comparison-budget-accuracy-96k",
            title="Family accuracy at 96 KiB (CMP)",
            rows=_BUDGET_ROWS,
            cols=workload_axis(BASE),
            cell=_budget_accuracy(96 * 1024),
            unit="% useful/issued",
            fmt=".1f",
        ),
    ),
    expectations=(
        Compare(
            panel="comparison-budget-speedup-96k",
            row="Discontinuity",
            other_row="MANA record/replay",
            op=">",
            note="region replay alone trails the discontinuity table",
        ),
        Compare(
            panel="comparison-budget-speedup-96k",
            row="Discontinuity",
            other_row="Fetch-directed",
            op=">=",
            offset=-0.02,
            note="discontinuity stays competitive with run-ahead at 96 KiB",
        ),
        Compare(
            panel="comparison-budget-speedup-16k",
            row="Discontinuity",
            other_row="Markov (multi-target)",
            op=">=",
            offset=-0.02,
            note="single-target entries win when storage is tight (§4)",
        ),
        Band(
            panel="comparison-budget-speedup-96k",
            row="Shadow-branch FTQ",
            lo=1.05,
            hi=2.5,
            note="shadow predecode delivers real speedup at 96 KiB",
        ),
        Band(
            panel="comparison-budget-speedup-96k",
            row="MANA record/replay",
            lo=0.95,
            hi=2.0,
            note="record/replay alone is neutral-to-positive, never harmful",
        ),
        Band(
            panel="comparison-budget-coverage-96k",
            row="Discontinuity",
            lo=55.0,
            hi=100.0,
            note="paper-default discontinuity coverage stays high",
        ),
    ),
)

#: this module's declarations, registry order.
EXPERIMENTS = (
    COMPARISON_ALTERNATIVES,
    COMPARISON_BANDWIDTH,
    COMPARISON_CORE_SCALING,
    COMPARISON_EXECUTION_BASED,
    COMPARISON_SOFTWARE_PREFETCH,
    COMPARISON_BUDGET_MATCHED,
)
