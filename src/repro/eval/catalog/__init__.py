"""The declarative experiment catalog.

Every experiment in this repo is declared once, as an
:class:`repro.eval.experiment.Experiment`, in one of the modules listed
in :data:`CATALOG_MODULES`.  Each module exposes its declarations as a
module-level ``EXPERIMENTS`` tuple; this package assembles them into
:data:`CATALOG`, the single name → experiment mapping the registry, CLI,
benchmarks and docs all introspect.

Lint rule R5 statically cross-checks the declarations against this
module list; underscore-prefixed modules (``_util``) are plumbing and
carry no declarations.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.eval.catalog import ablations, comparisons, figures, replication, scenarios
from repro.eval.experiment import Experiment

#: the catalog modules, in registry order (kept a literal for static lint).
CATALOG_MODULES: Tuple[str, ...] = (
    "figures",
    "ablations",
    "comparisons",
    "replication",
    "scenarios",
)

_MODULES = {
    "figures": figures,
    "ablations": ablations,
    "comparisons": comparisons,
    "replication": replication,
    "scenarios": scenarios,
}


def _build_catalog() -> Dict[str, Experiment]:
    catalog: Dict[str, Experiment] = {}
    for module_name in CATALOG_MODULES:
        module = _MODULES[module_name]
        for experiment in module.EXPERIMENTS:
            if experiment.name in catalog:
                raise ValueError(
                    f"duplicate experiment name {experiment.name!r} "
                    f"(redeclared in catalog module {module_name!r})"
                )
            catalog[experiment.name] = experiment
    return catalog


#: every declared experiment, name → definition, in registry order.
CATALOG: Dict[str, Experiment] = _build_catalog()

__all__ = ["CATALOG", "CATALOG_MODULES"]
