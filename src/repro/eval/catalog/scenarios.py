"""New-workload-family scenarios: every prefetcher family on the three
post-paper synth profiles.

The paper's four commercial workloads date from 2005; these experiments
run the same head-to-head family comparison on three modern front-end
stress patterns (:data:`repro.trace.synth.workloads.SCENARIO_WORKLOADS`):
``microsvc`` (deep call chains over a flat service-handler footprint),
``interp`` (interpreter/JIT dispatch loops with megamorphic indirect
jumps) and ``osmix`` (trap-heavy OS-intensive mix with far user/kernel
jumps).  One experiment per family so each can gate independently in CI.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.eval.catalog._util import (
    cmp_accuracy,
    cmp_speedup,
    scheme_axis,
    workload_axis,
)
from repro.eval.experiment import (
    Band,
    Compare,
    Experiment,
    ExperimentContext,
    Grid,
    PanelDef,
)
from repro.eval.runspec import RunSpec

#: one representative per prefetcher family, head-to-head on each
#: scenario workload (same set as the budget-matched sweep plus target).
SCENARIO_SCHEMES: Tuple[str, ...] = (
    "next-4-line",
    "target",
    "markov",
    "fdp",
    "mana",
    "shadow",
    "discontinuity",
)

_SCENARIO_ROWS = scheme_axis(SCENARIO_SCHEMES)


def _scenario_build(ctx: ExperimentContext, workload: str) -> List[RunSpec]:
    return [ctx.spec(workload, 4)] + [
        ctx.spec(workload, 4, scheme, l2_policy="bypass")
        for scheme in SCENARIO_SCHEMES
    ]


SCENARIO_MICROSVC = Experiment(
    name="scenario-microsvc",
    title="Prefetcher families on microservice call chains (4-way CMP)",
    paper="extension: post-paper workload families",
    tags=("scenario", "styles"),
    grid=Grid(axes=(("workload", ("microsvc",)),), build=_scenario_build),
    panels=(
        PanelDef(
            id="scenario-microsvc-speedup",
            title="Family speedup on microservice call chains (CMP, bypass)",
            rows=_SCENARIO_ROWS,
            cols=workload_axis(("microsvc",)),
            cell=cmp_speedup(),
            unit="speedup, X",
            notes=(
                "deep call chains over a flat service-handler footprint; "
                "discontinuity-style call/return capture is the paper's bet",
            ),
        ),
        PanelDef(
            id="scenario-microsvc-accuracy",
            title="Family accuracy on microservice call chains (CMP)",
            rows=_SCENARIO_ROWS,
            cols=workload_axis(("microsvc",)),
            cell=cmp_accuracy(),
            unit="% useful/issued",
            fmt=".1f",
        ),
    ),
    expectations=(
        Band(
            panel="scenario-microsvc-speedup",
            row="Discontinuity",
            lo=1.05,
            hi=3.0,
            note="the paper's scheme keeps paying off on deep call chains",
        ),
        Compare(
            panel="scenario-microsvc-speedup",
            row="Discontinuity",
            other_row="Next-4-lines (tagged)",
            op=">=",
            offset=-0.02,
            note="call-chain discontinuities defeat purely sequential "
            "prefetch",
        ),
        Compare(
            panel="scenario-microsvc-speedup",
            row="Discontinuity",
            other_row="MANA record/replay",
            op=">=",
            offset=-0.02,
        ),
    ),
)

SCENARIO_INTERP = Experiment(
    name="scenario-interp",
    title="Prefetcher families on interpreter dispatch loops (4-way CMP)",
    paper="extension: post-paper workload families",
    tags=("scenario", "styles"),
    grid=Grid(axes=(("workload", ("interp",)),), build=_scenario_build),
    panels=(
        PanelDef(
            id="scenario-interp-speedup",
            title="Family speedup on interpreter dispatch loops (CMP, bypass)",
            rows=_SCENARIO_ROWS,
            cols=workload_axis(("interp",)),
            cell=cmp_speedup(),
            unit="speedup, X",
            notes=(
                "megamorphic indirect dispatch: single-target entries "
                "(target, discontinuity) fight the switch fan-out",
            ),
        ),
        PanelDef(
            id="scenario-interp-accuracy",
            title="Family accuracy on interpreter dispatch loops (CMP)",
            rows=_SCENARIO_ROWS,
            cols=workload_axis(("interp",)),
            cell=cmp_accuracy(),
            unit="% useful/issued",
            fmt=".1f",
        ),
    ),
    expectations=(
        Band(
            panel="scenario-interp-speedup",
            row="Discontinuity",
            lo=1.0,
            hi=3.0,
            note="never harmful on dispatch loops",
        ),
        Compare(
            panel="scenario-interp-speedup",
            row="Discontinuity",
            other_row="Target prefetcher",
            op=">=",
            offset=-0.02,
            note="probe-ahead keeps discontinuity at least even with the "
            "plain target table",
        ),
    ),
)

SCENARIO_OSMIX = Experiment(
    name="scenario-osmix",
    title="Prefetcher families on a trap-heavy OS-intensive mix (4-way CMP)",
    paper="extension: post-paper workload families",
    tags=("scenario", "styles"),
    grid=Grid(axes=(("workload", ("osmix",)),), build=_scenario_build),
    panels=(
        PanelDef(
            id="scenario-osmix-speedup",
            title="Family speedup on the OS-intensive mix (CMP, bypass)",
            rows=_SCENARIO_ROWS,
            cols=workload_axis(("osmix",)),
            cell=cmp_speedup(),
            unit="speedup, X",
            notes=(
                "frequent traps and far user/kernel jumps break sequential "
                "runs the way the paper's §3 characterization describes",
            ),
        ),
        PanelDef(
            id="scenario-osmix-accuracy",
            title="Family accuracy on the OS-intensive mix (CMP)",
            rows=_SCENARIO_ROWS,
            cols=workload_axis(("osmix",)),
            cell=cmp_accuracy(),
            unit="% useful/issued",
            fmt=".1f",
        ),
    ),
    expectations=(
        Band(
            panel="scenario-osmix-speedup",
            row="Discontinuity",
            lo=1.05,
            hi=3.0,
            note="trap-driven discontinuities are exactly the table's prey",
        ),
        Compare(
            panel="scenario-osmix-speedup",
            row="Discontinuity",
            other_row="Next-4-lines (tagged)",
            op=">=",
            offset=-0.02,
        ),
    ),
)

#: this module's declarations, registry order.
EXPERIMENTS = (
    SCENARIO_MICROSVC,
    SCENARIO_INTERP,
    SCENARIO_OSMIX,
)
