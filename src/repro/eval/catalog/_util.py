"""Shared axis and cell helpers for the catalog declarations.

Underscore-prefixed modules in this package hold plumbing, not
experiments; lint rule R5 skips them when checking declaration
completeness.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence, Tuple

from repro.eval.experiment import Runs
from repro.prefetch.registry import prefetcher_display_name
from repro.trace.synth.workloads import DISPLAY_NAMES, workload_names

#: the four base commercial workloads, in canonical order.
BASE: Tuple[str, ...] = tuple(workload_names())

#: the CMP workload set: the base four plus the multiprogrammed mix.
CMP: Tuple[str, ...] = BASE + ("mix",)


def workload_axis(ids: Sequence[str]) -> Tuple[Tuple[str, str], ...]:
    """Panel axis of (display label, workload id) pairs."""
    return tuple((DISPLAY_NAMES[w], w) for w in ids)


def scheme_axis(schemes: Sequence[str]) -> Tuple[Tuple[str, str], ...]:
    """Panel axis of (display label, prefetcher name) pairs."""
    return tuple((prefetcher_display_name(s), s) for s in schemes)


def cmp_speedup(l2_policy: str = "bypass") -> Callable[[Runs, Any, Any], float]:
    """Cell: 4-core speedup of the row's scheme over the plain baseline."""

    def cell(runs: Runs, scheme: Any, workload: Any) -> float:
        return runs.speedup(workload, 4, scheme, l2_policy=l2_policy)

    return cell


def cmp_accuracy(l2_policy: str = "bypass") -> Callable[[Runs, Any, Any], float]:
    """Cell: 4-core prefetch accuracy (%) of the row's scheme."""

    def cell(runs: Runs, scheme: Any, workload: Any) -> float:
        result = runs.result(workload, 4, scheme, l2_policy=l2_policy)
        return 100.0 * result.prefetch_accuracy

    return cell
