"""Multi-seed replication of the headline CMP speedups.

The catalog entry reruns the two headline schemes across a fixed seed
set (ignoring the caller's seed, so the run set is the same no matter
how the experiment is invoked) and reports mean ± sample standard
deviation per workload.  The statistics helpers live in
:mod:`repro.eval.replication`.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.eval.catalog._util import BASE, workload_axis
from repro.eval.experiment import (
    Band,
    Compare,
    Experiment,
    ExperimentContext,
    Grid,
    PanelDef,
    Runs,
)
from repro.eval.replication import DEFAULT_SEEDS, REPLICATION_SCHEMES, summarize
from repro.eval.runspec import RunSpec

#: the seeds the replication check always spans (caller seed is ignored).
REPLICATION_SEEDS = DEFAULT_SEEDS[:3]


def _seeds_axis(ctx: ExperimentContext) -> Sequence[int]:
    return ctx.seeds


def _replication_build(
    ctx: ExperimentContext, seed: int, workload: str
) -> List[RunSpec]:
    return [ctx.spec(workload, 4, seed=seed)] + [
        ctx.spec(workload, 4, scheme, l2_policy="bypass", seed=seed)
        for scheme in REPLICATION_SCHEMES
    ]


def _speedups(runs: Runs, scheme: str, workload: str) -> List[float]:
    return [
        runs.speedup(workload, 4, scheme, l2_policy="bypass", seed=seed)
        for seed in runs.ctx.seeds
    ]


def _mean_cell(runs: Runs, scheme: Any, workload: Any) -> float:
    return summarize(_speedups(runs, scheme, workload)).mean


def _std_cell(runs: Runs, scheme: Any, workload: Any) -> float:
    return summarize(_speedups(runs, scheme, workload)).std


_ROWS = (
    ("Next-4-lines (tagged)", "next-4-line"),
    ("Discontinuity", "discontinuity"),
)

REPLICATION_CHECK = Experiment(
    name="replication-check",
    title="Headline CMP speedups with seed error bars",
    paper="§6 (headline CMP speedups), seed-robustness check",
    tags=("replication", "seeds"),
    grid=Grid(
        axes=(("seed", _seeds_axis), ("workload", BASE)),
        build=_replication_build,
    ),
    panels=(
        PanelDef(
            id="replication-mean",
            title=f"CMP speedup, mean over {len(REPLICATION_SEEDS)} seeds (bypass)",
            rows=_ROWS,
            cols=workload_axis(BASE),
            cell=_mean_cell,
            unit="speedup, X",
        ),
        PanelDef(
            id="replication-std",
            title=f"CMP speedup, sample std over {len(REPLICATION_SEEDS)} seeds",
            rows=_ROWS,
            cols=workload_axis(BASE),
            cell=_std_cell,
            unit="speedup, X",
        ),
    ),
    expectations=(
        Band(
            panel="replication-mean",
            row="Discontinuity",
            lo=1.02,
            note="discontinuity's mean speedup is real on every workload",
        ),
        Compare(
            panel="replication-mean",
            row="Discontinuity",
            other_row="Next-4-lines (tagged)",
            op=">",
            offset=-0.05,
            note="discontinuity keeps pace with the sequential scheme",
        ),
        Band(
            panel="replication-std",
            hi=0.2,
            note="seed noise stays far below the reported effects",
        ),
    ),
    seeds=REPLICATION_SEEDS,
)

#: this module's declarations, registry order.
EXPERIMENTS = (REPLICATION_CHECK,)
