"""Figures 1-10 of the paper as catalog declarations.

Each :class:`Experiment` below replaces one hand-written ``figNN.py``
driver: the grid declares exactly the runs the old ``specs()`` emitted
(the spec-parity golden test pins this), the panels reproduce the old
``run()`` tables, and the expectations encode the shape assertions the
benchmark suite used to hand-code.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple, Union

from repro.caches.config import DEFAULT_HIERARCHY
from repro.eval.catalog._util import BASE, CMP, scheme_axis, workload_axis
from repro.eval.experiment import (
    Band,
    Compare,
    Expectation,
    Experiment,
    ExperimentContext,
    Extremum,
    Grid,
    PanelDef,
    Runs,
)
from repro.eval.runspec import RunSpec
from repro.isa.classify import MissClass, kind_label
from repro.isa.kinds import TransitionKind
from repro.util.units import KB, MB

# --------------------------------------------------------------------------
# Figure 1 — L1I miss rate vs. cache geometry (§3.1)

#: the paper's sweep points: (label, per-core L1I config overrides).
FIG01_CONFIGS: Tuple[Tuple[str, Dict[str, int]], ...] = (
    ("Default", {}),
    ("Direct-mapped", {"associativity": 1}),
    ("2-way", {"associativity": 2}),
    ("8-way", {"associativity": 8}),
    ("32B line size", {"line_size": 32}),
    ("128B line size", {"line_size": 128}),
    ("256B line size", {"line_size": 256}),
    ("16KB", {"capacity_bytes": 16 * KB}),
    ("64KB", {"capacity_bytes": 64 * KB}),
    ("128KB", {"capacity_bytes": 128 * KB}),
)


def _l1i_hierarchy(overrides: Dict[str, int]) -> Any:
    return DEFAULT_HIERARCHY.with_l1i(**overrides) if overrides else DEFAULT_HIERARCHY


def _fig01_build(ctx: ExperimentContext, config: Any, workload: str) -> RunSpec:
    _, overrides = config
    return ctx.spec(workload, 1, hierarchy=_l1i_hierarchy(overrides))


def _fig01_cell(runs: Runs, overrides: Any, workload: Any) -> float:
    result = runs.result(workload, 1, hierarchy=_l1i_hierarchy(overrides))
    return 100.0 * result.l1i_miss_rate


FIG01 = Experiment(
    name="fig01",
    title="I$ miss rate vs. associativity / line size / capacity",
    paper="Figure 1 (§3.1)",
    tags=("figure", "baseline", "miss-rate"),
    grid=Grid(
        axes=(("config", FIG01_CONFIGS), ("workload", BASE)),
        build=_fig01_build,
    ),
    panels=(
        PanelDef(
            id="fig01",
            title="I$ miss rate vs. associativity / line size / capacity",
            rows=tuple((label, overrides) for label, overrides in FIG01_CONFIGS),
            cols=workload_axis(BASE),
            cell=_fig01_cell,
            unit="% per instruction",
            notes=(
                "paper band for the default config: 1.32-3.16%, jApp highest",
                "default = 32KB, 4-way, 64B lines",
            ),
        ),
    ),
    expectations=(
        Band(
            panel="fig01",
            row="Default",
            lo=0.3,
            hi=5.0,
            note="default-config miss rate lands in the paper's (loose) band",
        ),
        Extremum(
            panel="fig01",
            row="Default",
            col="jApp",
            note="jApp has the highest default-config miss rate (§3.1)",
        ),
        Compare(
            panel="fig01",
            row="256B line size",
            other_row="Default",
            op="<",
            note="larger lines are highly effective",
        ),
        Compare(panel="fig01", row="32B line size", other_row="Default", op=">"),
        Compare(
            panel="fig01",
            row="128KB",
            other_row="Default",
            op="<",
            note="capacity helps strongly",
        ),
        Compare(panel="fig01", row="16KB", other_row="Default", op=">"),
        Compare(
            panel="fig01",
            row="Direct-mapped",
            other_row="Default",
            op=">",
            note="direct-mapped is the worst associativity",
        ),
    ),
)

# --------------------------------------------------------------------------
# Figure 2 — L2 instruction miss rate vs. capacity, single core vs CMP (§3.1)

#: the paper's L2 capacity sweep.
L2_SIZES_MB = (1, 2, 4)


def _l2_hierarchy(size_mb: int) -> Any:
    return DEFAULT_HIERARCHY.with_l2(capacity_bytes=size_mb * MB)


def _fig02_build(
    ctx: ExperimentContext, size_mb: int, n_cores: int, workload: str
) -> Optional[RunSpec]:
    if workload == "mix" and n_cores == 1:
        return None
    return ctx.spec(workload, n_cores, hierarchy=_l2_hierarchy(size_mb))


def _fig02_cell(runs: Runs, key: Any, workload: Any) -> float:
    size_mb, n_cores = key
    if workload == "mix" and n_cores == 1:
        return float("nan")
    result = runs.result(workload, n_cores, hierarchy=_l2_hierarchy(size_mb))
    return 100.0 * result.l2i_miss_rate


FIG02 = Experiment(
    name="fig02",
    title="L2 instruction miss rate vs. capacity (single core / CMP)",
    paper="Figure 2 (§3.1)",
    tags=("figure", "baseline", "miss-rate"),
    grid=Grid(
        axes=(("size_mb", L2_SIZES_MB), ("n_cores", (1, 4)), ("workload", CMP)),
        build=_fig02_build,
    ),
    panels=(
        PanelDef(
            id="fig02",
            title="L2 instruction miss rate vs. capacity (single core / CMP)",
            rows=tuple(
                (f"{size_mb}MB {tag}", (size_mb, n_cores))
                for size_mb in L2_SIZES_MB
                for n_cores, tag in ((1, "single core"), (4, "4-way CMP"))
            ),
            cols=workload_axis(CMP),
            cell=_fig02_cell,
            unit="% per instruction",
            notes=(
                "paper band, 2MB 4-way CMP: 0.07-0.44%; 1MB CMP: 0.24-0.81%",
                "Mix runs only on the CMP (nan for single core)",
            ),
        ),
    ),
    expectations=(
        Compare(
            panel="fig02",
            row="2MB 4-way CMP",
            other_row="2MB single core",
            op=">",
            cols=("DB", "TPC-W", "jApp"),
            note="CMP rates exceed single core at the default 2MB",
        ),
        Compare(
            panel="fig02",
            row="1MB 4-way CMP",
            other_row="2MB 4-way CMP",
            op=">",
            cols=("DB", "TPC-W", "jApp"),
            note="capacity has a large effect",
        ),
        Compare(
            panel="fig02",
            row="2MB 4-way CMP",
            other_row="4MB 4-way CMP",
            op=">",
            cols=("DB", "TPC-W", "jApp"),
        ),
        Compare(
            panel="fig02",
            row="2MB 4-way CMP",
            col="Mixed",
            other_col="DB",
            op=">",
            note="the multiprogrammed mix is among the highest CMP rates",
        ),
        Compare(panel="fig02", row="2MB 4-way CMP", col="Mixed", other_col="TPC-W", op=">"),
        Compare(panel="fig02", row="2MB 4-way CMP", col="Mixed", other_col="Web", op=">"),
    ),
    # Capacity effects need the longer measurement windows: at smoke
    # scale a 1-4MB L2 never fills, so the sweep is compulsory-miss flat.
    bench_scale="default",
)

# --------------------------------------------------------------------------
# Figure 3 — instruction-miss breakdown by transition category (§3.2)


def _fig03_build(
    ctx: ExperimentContext, n_cores: int, workload: str
) -> Optional[RunSpec]:
    if workload == "mix" and n_cores == 1:
        return None
    return ctx.spec(workload, n_cores)


_KIND_ROWS = tuple((kind_label(kind), kind) for kind in TransitionKind)


def _breakdown_cell(n_cores: int, level: str) -> Callable[[Runs, Any, Any], float]:
    def cell(runs: Runs, kind: Any, workload: Any) -> float:
        result = runs.result(workload, n_cores)
        breakdown = result.l1i_breakdown if level == "l1i" else result.l2i_breakdown
        return 100.0 * breakdown.fractions()[kind]

    return cell


_FIG03_NOTES = ("paper: sequential only 40-60%; branches 20-40%; calls 15-20%",)


def _sequential_band(panel: str, lo: float, hi: float) -> Expectation:
    return Band(
        panel=panel,
        row="Sequential",
        lo=lo,
        hi=hi,
        note="sequential misses are only part of the story (§3.2)",
    )


FIG03 = Experiment(
    name="fig03",
    title="Instruction-miss breakdown by transition category",
    paper="Figure 3 (§3.2)",
    tags=("figure", "baseline", "breakdown"),
    grid=Grid(axes=(("n_cores", (1, 4)), ("workload", CMP)), build=_fig03_build),
    panels=(
        PanelDef(
            id="fig03i",
            title="I$ miss breakdown (single core)",
            rows=_KIND_ROWS,
            cols=workload_axis(BASE),
            cell=_breakdown_cell(1, "l1i"),
            unit="% of misses",
            fmt=".1f",
            notes=_FIG03_NOTES,
        ),
        PanelDef(
            id="fig03ii",
            title="L2$ instruction miss breakdown (single core)",
            rows=_KIND_ROWS,
            cols=workload_axis(BASE),
            cell=_breakdown_cell(1, "l2i"),
            unit="% of misses",
            fmt=".1f",
            notes=_FIG03_NOTES,
        ),
        PanelDef(
            id="fig03iii",
            title="L2$ instruction miss breakdown (4-way CMP)",
            rows=_KIND_ROWS,
            cols=workload_axis(CMP),
            cell=_breakdown_cell(4, "l2i"),
            unit="% of misses",
            fmt=".1f",
            notes=_FIG03_NOTES,
        ),
    ),
    expectations=(
        _sequential_band("fig03i", 30.0, 70.0),
        Band(panel="fig03i", row="Trap", hi=2.0, note="traps are negligible"),
        Compare(
            panel="fig03i",
            row="Cond branch (tf)",
            other_row="Cond branch (tb)",
            op=">=",
            note="taken-forward conditionals dominate the branch misses",
        ),
        Compare(
            panel="fig03i",
            row="Call",
            other_row="Jump",
            op=">=",
            note="direct calls dominate the function-call misses",
        ),
        _sequential_band("fig03ii", 25.0, 75.0),
        _sequential_band("fig03iii", 25.0, 75.0),
    ),
)

# --------------------------------------------------------------------------
# Figure 4 — potential of eliminating instruction misses (§3.3)

#: the paper's six elimination sets, in legend order.
ELIMINATIONS: Tuple[Tuple[str, FrozenSet[MissClass]], ...] = (
    ("Sequential only", frozenset({MissClass.SEQUENTIAL})),
    ("Branch only", frozenset({MissClass.BRANCH})),
    ("Function only", frozenset({MissClass.FUNCTION})),
    ("Sequential + Branch", frozenset({MissClass.SEQUENTIAL, MissClass.BRANCH})),
    ("Sequential + Function", frozenset({MissClass.SEQUENTIAL, MissClass.FUNCTION})),
    (
        "Seq + Branch + Function",
        frozenset({MissClass.SEQUENTIAL, MissClass.BRANCH, MissClass.FUNCTION}),
    ),
)


def _fig04_build(
    ctx: ExperimentContext, n_cores: int, workload: str
) -> Optional[List[RunSpec]]:
    if workload == "mix" and n_cores == 1:
        return None
    return [ctx.spec(workload, n_cores)] + [
        ctx.spec(workload, n_cores, free_miss_classes=free_set)
        for _, free_set in ELIMINATIONS
    ]


def _elimination_cell(n_cores: int) -> Callable[[Runs, Any, Any], float]:
    def cell(runs: Runs, free_set: Any, workload: Any) -> float:
        return runs.speedup(workload, n_cores, "none", free_miss_classes=free_set)

    return cell


_FIG04_ROWS = tuple((label, free_set) for label, free_set in ELIMINATIONS)


def _fig04_expectations(panel: str) -> Tuple[Expectation, ...]:
    return (
        Compare(
            panel=panel,
            row="Sequential only",
            other_row="Branch only",
            op=">=",
            offset=-0.02,
            note="sequential-only beats branch-only (§3.3)",
        ),
        Compare(
            panel=panel,
            row="Sequential only",
            other_row="Function only",
            op=">=",
            offset=-0.02,
        ),
        Compare(
            panel=panel,
            row="Seq + Branch + Function",
            other_row="Sequential only",
            op=">=",
            note="eliminating everything beats any single class",
        ),
        Compare(
            panel=panel,
            row="Seq + Branch + Function",
            other_row="Sequential + Branch",
            op=">=",
            offset=-1e-9,
        ),
        Band(
            panel=panel,
            row="Branch only",
            lo=0.99,
            note="every elimination is a (weak) improvement",
        ),
        Band(panel=panel, row="Function only", lo=0.99),
    )


FIG04 = Experiment(
    name="fig04",
    title="Performance potential of eliminating instruction misses",
    paper="Figure 4 (§3.3)",
    tags=("figure", "limit-study", "speedup"),
    grid=Grid(axes=(("n_cores", (1, 4)), ("workload", CMP)), build=_fig04_build),
    panels=(
        PanelDef(
            id="fig04i",
            title="Miss-elimination potential (single core)",
            rows=_FIG04_ROWS,
            cols=workload_axis(BASE),
            cell=_elimination_cell(1),
            unit="speedup, X",
            notes=("paper: up to ~1.6X when all three classes are eliminated",),
        ),
        PanelDef(
            id="fig04ii",
            title="Miss-elimination potential (4-way CMP)",
            rows=_FIG04_ROWS,
            cols=workload_axis(CMP),
            cell=_elimination_cell(4),
            unit="speedup, X",
            notes=("paper: up to ~1.6X when all three classes are eliminated",),
        ),
    ),
    expectations=_fig04_expectations("fig04i")
    + _fig04_expectations("fig04ii")
    + (
        Band(
            panel="fig04ii",
            row="Seq + Branch + Function",
            agg="max",
            lo=1.25,
            note="vast improvements are available (paper: up to ~1.6X)",
        ),
    ),
)

# --------------------------------------------------------------------------
# Figures 5/6/7 — the shared normal-install prefetcher sweep (§6)

#: the paper's Figure 5/6/7 scheme set, legend order.
SCHEMES = ("next-line-on-miss", "next-line-tagged", "next-4-line", "discontinuity")


def _fig05_build(
    ctx: ExperimentContext, n_cores: int, workload: str, scheme: str
) -> Optional[RunSpec]:
    if workload == "mix" and n_cores == 1:
        return None
    return ctx.spec(workload, n_cores, scheme)


#: Figures 5, 6 and 7 read the same normal-install runs: one shared grid,
#: deduplicated across the three experiments by the batch submission path.
FIG05_GRID = Grid(
    axes=(("n_cores", (1, 4)), ("workload", CMP), ("scheme", ("none",) + SCHEMES)),
    build=_fig05_build,
)


def _miss_ratio(
    n_cores: int, metric: str, zero: float = 0.0
) -> Callable[[Runs, Any, Any], float]:
    def cell(runs: Runs, scheme: Any, workload: Any) -> float:
        base = getattr(runs.result(workload, n_cores), metric)
        rate = getattr(runs.result(workload, n_cores, scheme), metric)
        return rate / base if base > 0 else zero

    return cell


def _perf_cell(n_cores: int, l2_policy: str) -> Callable[[Runs, Any, Any], float]:
    def cell(runs: Runs, scheme: Any, workload: Any) -> float:
        return runs.speedup(workload, n_cores, scheme, l2_policy=l2_policy)

    return cell


def _fig05_ordering(panel: str) -> Tuple[Expectation, ...]:
    return (
        Compare(
            panel=panel,
            row="Next-line (on miss)",
            other_row="Next-line (tagged)",
            op=">",
            note="aggressiveness ordering: on-miss leaves the most misses",
        ),
        Compare(
            panel=panel,
            row="Next-line (tagged)",
            other_row="Next-4-lines (tagged)",
            op=">",
        ),
        Compare(
            panel=panel,
            row="Next-4-lines (tagged)",
            other_row="Discontinuity",
            op=">=",
            factor=0.85,
        ),
        Band(
            panel=panel,
            row="Next-line (on miss)",
            hi=0.9,
            note="every scheme removes misses",
        ),
    )


FIG05 = Experiment(
    name="fig05",
    title="Residual instruction miss rates under the HW prefetchers",
    paper="Figure 5 (§6)",
    tags=("figure", "prefetch", "miss-rate"),
    grid=FIG05_GRID,
    panels=(
        PanelDef(
            id="fig05i",
            title="I$ miss rate under prefetching (single core)",
            rows=scheme_axis(SCHEMES),
            cols=workload_axis(BASE),
            cell=_miss_ratio(1, "l1i_miss_rate"),
            unit="normalized to no prefetch",
            notes=("paper: discontinuity residual miss rate is 10-16% of baseline",),
        ),
        PanelDef(
            id="fig05ii",
            title="L2$ instruction miss rate under prefetching (single core)",
            rows=scheme_axis(SCHEMES),
            cols=workload_axis(BASE),
            cell=_miss_ratio(1, "l2i_miss_rate"),
            unit="normalized to no prefetch",
            notes=("paper: discontinuity residual miss rate is 10-16% of baseline",),
        ),
        PanelDef(
            id="fig05iii",
            title="L2$ instruction miss rate under prefetching (4-way CMP)",
            rows=scheme_axis(SCHEMES),
            cols=workload_axis(CMP),
            cell=_miss_ratio(4, "l2i_miss_rate"),
            unit="normalized to no prefetch",
            notes=("paper: discontinuity residual miss rate is 10-16% of baseline",),
        ),
    ),
    expectations=_fig05_ordering("fig05i")
    + _fig05_ordering("fig05ii")
    + _fig05_ordering("fig05iii")
    + (
        Band(
            panel="fig05i",
            row="Discontinuity",
            hi=0.30,
            note="discontinuity eliminates the vast majority of L1I misses",
        ),
    ),
)

_FIG06_NOTE = "normal L2 install: pollution limits the gains (paper: <= ~1.28X)"


def _fig06_expectations(panel: str) -> Tuple[Expectation, ...]:
    return (
        Band(panel=panel, lo=0.97, note="all schemes improve on no-prefetch"),
        Compare(
            panel=panel,
            row="Discontinuity",
            other_row="Next-line (on miss)",
            op=">=",
            note="aggressiveness ordering holds for the main pair",
        ),
    )


FIG06 = Experiment(
    name="fig06",
    title="Prefetcher speedups under the normal (polluting) L2 install",
    paper="Figure 6 (§6)",
    tags=("figure", "prefetch", "speedup"),
    grid=FIG05_GRID,
    panels=(
        PanelDef(
            id="fig06i",
            title="Prefetcher speedups, normal L2 install (single core)",
            rows=scheme_axis(SCHEMES),
            cols=workload_axis(BASE),
            cell=_perf_cell(1, "normal"),
            unit="speedup, X",
            notes=(_FIG06_NOTE,),
        ),
        PanelDef(
            id="fig06ii",
            title="Prefetcher speedups, normal L2 install (4-way CMP)",
            rows=scheme_axis(SCHEMES),
            cols=workload_axis(CMP),
            cell=_perf_cell(4, "normal"),
            unit="speedup, X",
            notes=(_FIG06_NOTE,),
        ),
    ),
    expectations=_fig06_expectations("fig06i")
    + _fig06_expectations("fig06ii")
    + (
        Band(
            panel="fig06ii",
            row="Discontinuity",
            agg="max",
            lo=1.05,
            hi=1.8,
            note="gains are real but below the Figure 4 potential (pollution)",
        ),
    ),
    bench_scale="default",
)

FIG07 = Experiment(
    name="fig07",
    title="L2 data-miss pollution from instruction prefetching",
    paper="Figure 7 (§6)",
    tags=("figure", "prefetch", "pollution"),
    grid=FIG05_GRID,
    panels=(
        PanelDef(
            id="fig07i",
            title="L2$ data miss rate under prefetching (single core, normal install)",
            rows=scheme_axis(SCHEMES),
            cols=workload_axis(BASE),
            cell=_miss_ratio(1, "l2d_miss_rate", zero=1.0),
            unit="normalized to no prefetch",
            notes=("paper: aggressive schemes reach ~1.35X on the CMP",),
        ),
        PanelDef(
            id="fig07ii",
            title="L2$ data miss rate under prefetching (4-way CMP, normal install)",
            rows=scheme_axis(SCHEMES),
            cols=workload_axis(CMP),
            cell=_miss_ratio(4, "l2d_miss_rate", zero=1.0),
            unit="normalized to no prefetch",
            notes=("paper: aggressive schemes reach ~1.35X on the CMP",),
        ),
    ),
    expectations=(
        Band(
            panel="fig07ii",
            row="Discontinuity",
            lo=1.01,
            note="aggressive prefetching inflates the CMP L2 data miss rate",
        ),
        Band(panel="fig07ii", row="Next-4-lines (tagged)", lo=1.01),
        Compare(
            panel="fig07ii",
            row="Discontinuity",
            other_row="Next-line (on miss)",
            op=">=",
            offset=-0.05,
            note="the gentle next-line schemes pollute less",
        ),
        Band(
            panel="fig07i",
            row="Discontinuity",
            agg="max",
            lo=1.005,
            note="the single core shows the effect too, if less strongly",
        ),
    ),
    bench_scale="default",
)

# --------------------------------------------------------------------------
# Figure 8 — speedups with L2-bypass installation (§7)


def _fig08_build(
    ctx: ExperimentContext, n_cores: int, workload: str, scheme: str
) -> Optional[RunSpec]:
    if workload == "mix" and n_cores == 1:
        return None
    if scheme == "none":
        return ctx.spec(workload, n_cores)
    return ctx.spec(workload, n_cores, scheme, l2_policy="bypass")


_FIG08_NOTE = "bypass install (§7): pollution removed; paper: 1.08-1.37X on CMP"

FIG08 = Experiment(
    name="fig08",
    title="Prefetcher speedups with L2-bypass installation",
    paper="Figure 8 (§7)",
    tags=("figure", "prefetch", "speedup", "bypass"),
    grid=Grid(
        axes=(("n_cores", (1, 4)), ("workload", CMP), ("scheme", ("none",) + SCHEMES)),
        build=_fig08_build,
    ),
    panels=(
        PanelDef(
            id="fig08i",
            title="Prefetcher speedups, L2-bypass install (single core)",
            rows=scheme_axis(SCHEMES),
            cols=workload_axis(BASE),
            cell=_perf_cell(1, "bypass"),
            unit="speedup, X",
            notes=(_FIG08_NOTE,),
        ),
        PanelDef(
            id="fig08ii",
            title="Prefetcher speedups, L2-bypass install (4-way CMP)",
            rows=scheme_axis(SCHEMES),
            cols=workload_axis(CMP),
            cell=_perf_cell(4, "bypass"),
            unit="speedup, X",
            notes=(_FIG08_NOTE,),
        ),
    ),
    expectations=(
        Band(panel="fig08i", lo=0.97, note="all schemes improve on no-prefetch"),
        Band(panel="fig08ii", lo=0.97),
        Band(
            panel="fig08ii",
            row="Discontinuity",
            agg="max",
            lo=1.15,
            note="paper headline: discontinuity with bypass reaches 1.08-1.37X",
        ),
        Band(panel="fig08ii", row="Discontinuity", agg="min", lo=1.02),
    ),
    bench_scale="default",
)

# --------------------------------------------------------------------------
# Figure 9 — accuracy and the next-2-line discontinuity variant (§7)

#: Figure 9 scheme set: Figure 5's four plus the 2NL discontinuity.
SCHEMES_9 = SCHEMES + ("discontinuity-2nl",)


def _fig09_build(
    ctx: ExperimentContext, workload: str, scheme: str
) -> RunSpec:
    if scheme == "none":
        return ctx.spec(workload, 4)
    return ctx.spec(workload, 4, scheme, l2_policy="bypass")


def _fig09_accuracy(runs: Runs, scheme: Any, workload: Any) -> float:
    result = runs.result(workload, 4, scheme, l2_policy="bypass")
    return 100.0 * result.prefetch_accuracy


FIG09 = Experiment(
    name="fig09",
    title="Prefetch accuracy and the next-2-line discontinuity variant",
    paper="Figure 9 (§7)",
    tags=("figure", "prefetch", "accuracy"),
    grid=Grid(
        axes=(("workload", CMP), ("scheme", ("none",) + SCHEMES_9)),
        build=_fig09_build,
    ),
    panels=(
        PanelDef(
            id="fig09i",
            title="Prefetch accuracy (4-way CMP)",
            rows=scheme_axis(SCHEMES_9),
            cols=workload_axis(CMP),
            cell=_fig09_accuracy,
            unit="% useful/issued",
            fmt=".1f",
            notes=("paper: discont (2NL) ~50% more accurate than discontinuity (4NL)",),
        ),
        PanelDef(
            id="fig09ii",
            title="Speedups including discont (2NL) (4-way CMP, bypass)",
            rows=scheme_axis(SCHEMES_9),
            cols=workload_axis(CMP),
            cell=_perf_cell(4, "bypass"),
            unit="speedup, X",
            notes=("paper: discont (2NL) outperforms next-4-lines",),
        ),
    ),
    expectations=(
        Compare(
            panel="fig09i",
            row="Next-line (on miss)",
            other_row="Next-4-lines (tagged)",
            op=">",
            note="accuracy falls with aggressiveness",
        ),
        Compare(
            panel="fig09i",
            row="Next-4-lines (tagged)",
            other_row="Discontinuity",
            op=">",
        ),
        Compare(
            panel="fig09i",
            row="Next-line (tagged)",
            other_row="Next-4-lines (tagged)",
            op=">",
        ),
        Compare(
            panel="fig09i",
            row="Discont (2NL)",
            other_row="Discontinuity",
            op=">",
            factor=1.25,
            note="the 2NL variant is ~50% more accurate (loose: >= 25%)",
        ),
        Compare(
            panel="fig09ii",
            row="Discont (2NL)",
            other_row="Next-4-lines (tagged)",
            op=">",
            factor=0.9,
            note="2NL stays competitive despite the shorter reach",
        ),
    ),
)

# --------------------------------------------------------------------------
# Figure 10 — miss coverage vs. discontinuity-table size (§7)

#: the paper's sweep, largest first (legend order).
TABLE_SIZES = (8192, 4096, 2048, 1024, 512, 256)

_FIG10_VARIANTS: Tuple[Union[int, str], ...] = TABLE_SIZES + ("next-4-line",)


def _fig10_build(ctx: ExperimentContext, workload: str, variant: Any) -> RunSpec:
    if variant == "next-4-line":
        return ctx.spec(workload, 4, "next-4-line", l2_policy="bypass")
    return ctx.spec(
        workload,
        4,
        "discontinuity",
        l2_policy="bypass",
        prefetcher_overrides={"table_entries": variant},
    )


def _fig10_cell(metric: str) -> Callable[[Runs, Any, Any], float]:
    def cell(runs: Runs, variant: Any, workload: Any) -> float:
        if variant == "next-4-line":
            result = runs.result(workload, 4, "next-4-line", l2_policy="bypass")
        else:
            result = runs.result(
                workload,
                4,
                "discontinuity",
                l2_policy="bypass",
                prefetcher_overrides={"table_entries": variant},
            )
        return 100.0 * getattr(result, metric)

    return cell


_FIG10_ROWS = tuple((f"{size}-entries", size) for size in TABLE_SIZES) + (
    ("Next-4lines (tagged)", "next-4-line"),
)

_FIG10_NOTES = (
    "paper: 4x table reduction costs minimal coverage; all sizes beat next-4-line",
)


def _fig10_expectations(panel: str) -> Tuple[Expectation, ...]:
    return (
        Compare(
            panel=panel,
            row="2048-entries",
            other_row="8192-entries",
            op=">",
            offset=-8.0,
            note="a 4x smaller table loses minimal coverage",
        ),
        Compare(
            panel=panel,
            row="8192-entries",
            other_row="256-entries",
            op=">=",
            offset=-3.0,
            note="larger tables never cover (much) less",
        ),
        Compare(
            panel=panel,
            row="256-entries",
            other_row="Next-4lines (tagged)",
            op=">",
            note="every table size beats the next-4-line prefetcher",
        ),
    )


FIG10 = Experiment(
    name="fig10",
    title="Miss coverage vs. discontinuity-table size",
    paper="Figure 10 (§7)",
    tags=("figure", "prefetch", "coverage"),
    grid=Grid(
        axes=(("variant", _FIG10_VARIANTS), ("workload", CMP)),
        build=_fig10_build,
    ),
    panels=(
        PanelDef(
            id="fig10i",
            title="L1 miss coverage vs. discontinuity table size (4-way CMP)",
            rows=_FIG10_ROWS,
            cols=workload_axis(CMP),
            cell=_fig10_cell("l1i_coverage"),
            unit="% coverage",
            fmt=".1f",
            notes=_FIG10_NOTES,
        ),
        PanelDef(
            id="fig10ii",
            title="L2 miss coverage vs. discontinuity table size (4-way CMP)",
            rows=_FIG10_ROWS,
            cols=workload_axis(CMP),
            cell=_fig10_cell("l2i_coverage"),
            unit="% coverage",
            fmt=".1f",
            notes=_FIG10_NOTES,
        ),
    ),
    expectations=_fig10_expectations("fig10i") + _fig10_expectations("fig10ii"),
)

#: this module's declarations, registry order.
EXPERIMENTS = (FIG01, FIG02, FIG03, FIG04, FIG05, FIG06, FIG07, FIG08, FIG09, FIG10)
