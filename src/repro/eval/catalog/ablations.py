"""The paper's design-choice ablations as catalog declarations.

These isolate individual mechanisms beyond the paper's figures: the §4.1
queue filters and LIFO discipline, the discontinuity table's 2-bit
eviction counter, the prefetch-ahead distance, probe-ahead timing, the
single- vs multi-target table design, the §2.4 used-bit re-prefetch
filter, and two substrate-sensitivity checks (L2 inclusion, replacement
policy).
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.eval.catalog._util import BASE, cmp_speedup, workload_axis
from repro.eval.experiment import (
    Band,
    Compare,
    Experiment,
    ExperimentContext,
    Grid,
    PanelDef,
    Runs,
    Spread,
)
from repro.eval.runspec import RunSpec

# --------------------------------------------------------------------------
# §4.1 — prefetch-queue filtering on/off


def _filtering_build(ctx: ExperimentContext, workload: str) -> List[RunSpec]:
    return [ctx.spec(workload, 4)] + [
        ctx.spec(
            workload, 4, "discontinuity", l2_policy="bypass", queue_filtering=filtering
        )
        for filtering in (True, False)
    ]


def _filtering_speedup(runs: Runs, filtering: Any, workload: Any) -> float:
    return runs.speedup(
        workload, 4, "discontinuity", l2_policy="bypass", queue_filtering=filtering
    )


def _filtering_probe_waste(runs: Runs, filtering: Any, workload: Any) -> float:
    result = runs.result(
        workload, 4, "discontinuity", l2_policy="bypass", queue_filtering=filtering
    )
    probes = sum(
        core.prefetch.probe_found_present + core.prefetch.issued
        for core in result.cores
    )
    found = sum(core.prefetch.probe_found_present for core in result.cores)
    return 100.0 * found / probes if probes else 0.0


_FILTERING_ROWS = (("Filtering on", True), ("Filtering off", False))

ABLATION_FILTERING = Experiment(
    name="ablation-filtering",
    title="Prefetch-queue filtering on vs. off (discontinuity, CMP)",
    paper="§4.1 (queue filters)",
    tags=("ablation", "queue"),
    grid=Grid(axes=(("workload", BASE),), build=_filtering_build),
    panels=(
        PanelDef(
            id="ablation-filtering-speedup",
            title="Discontinuity speedup with/without queue filtering (CMP)",
            rows=_FILTERING_ROWS,
            cols=workload_axis(BASE),
            cell=_filtering_speedup,
            unit="speedup, X",
        ),
        PanelDef(
            id="ablation-filtering-probes",
            title="Prefetch tag probes finding the line already present",
            rows=_FILTERING_ROWS,
            cols=workload_axis(BASE),
            cell=_filtering_probe_waste,
            unit="% of probes",
            fmt=".1f",
            notes=(
                "paper: after filtering, for up to 90% of probes the line is absent",
            ),
        ),
    ),
    expectations=(
        Compare(
            panel="ablation-filtering-speedup",
            row="Filtering on",
            other_row="Filtering off",
            op=">",
            offset=-0.05,
            note="filtering's performance cost is extremely minor, never harmful",
        ),
        Compare(
            panel="ablation-filtering-probes",
            row="Filtering on",
            other_row="Filtering off",
            op="<=",
            offset=2.0,
            note="filtering reduces probes that find the line already resident",
        ),
    ),
)

# --------------------------------------------------------------------------
# §4 — the discontinuity table's 2-bit eviction counter

_EVICTION_OVERRIDES = {"table_entries": 256}


def _eviction_build(
    ctx: ExperimentContext, counter_max: int, workload: str
) -> RunSpec:
    return ctx.spec(
        workload,
        4,
        "discontinuity",
        l2_policy="bypass",
        prefetcher_overrides=dict(_EVICTION_OVERRIDES, counter_max=counter_max),
    )


def _eviction_coverage(runs: Runs, counter_max: Any, workload: Any) -> float:
    result = runs.result(
        workload,
        4,
        "discontinuity",
        l2_policy="bypass",
        prefetcher_overrides=dict(_EVICTION_OVERRIDES, counter_max=counter_max),
    )
    return 100.0 * result.l1i_coverage


ABLATION_EVICTION_COUNTER = Experiment(
    name="ablation-eviction-counter",
    title="2-bit eviction counter vs. always-replace, 256-entry table (CMP)",
    paper="§4 (table thrash protection)",
    tags=("ablation", "table"),
    grid=Grid(
        axes=(("counter_max", (3, 0)), ("workload", BASE)), build=_eviction_build
    ),
    panels=(
        PanelDef(
            id="ablation-eviction-counter",
            title="L1 coverage, 256-entry table: eviction counter vs always-replace",
            rows=(("2-bit counter", 3), ("always replace", 0)),
            cols=workload_axis(BASE),
            cell=_eviction_coverage,
            unit="% coverage",
            fmt=".1f",
        ),
    ),
    expectations=(
        Compare(
            panel="ablation-eviction-counter",
            row="2-bit counter",
            other_row="always replace",
            op=">=",
            offset=-1.0,
            note="the counter helps (or never materially hurts) everywhere",
        ),
    ),
)

# --------------------------------------------------------------------------
# §4 — prefetch-ahead distance sweep

AHEAD_DISTANCES = (1, 2, 3, 4, 6, 8)


def _ahead_build(ctx: ExperimentContext, workload: str) -> List[RunSpec]:
    return [ctx.spec(workload, 4)] + [
        ctx.spec(
            workload,
            4,
            "discontinuity",
            l2_policy="bypass",
            prefetcher_overrides={"prefetch_ahead": distance},
        )
        for distance in AHEAD_DISTANCES
    ]


def _ahead_result(runs: Runs, distance: Any, workload: Any) -> Any:
    return runs.result(
        workload,
        4,
        "discontinuity",
        l2_policy="bypass",
        prefetcher_overrides={"prefetch_ahead": distance},
    )


def _ahead_speedup(runs: Runs, distance: Any, workload: Any) -> float:
    return runs.speedup(
        workload,
        4,
        "discontinuity",
        l2_policy="bypass",
        prefetcher_overrides={"prefetch_ahead": distance},
    )


def _ahead_accuracy(runs: Runs, distance: Any, workload: Any) -> float:
    return 100.0 * _ahead_result(runs, distance, workload).prefetch_accuracy


_AHEAD_ROWS = tuple((f"ahead={distance}", distance) for distance in AHEAD_DISTANCES)

ABLATION_PREFETCH_AHEAD = Experiment(
    name="ablation-prefetch-ahead",
    title="Prefetch-ahead distance sweep (discontinuity, CMP, bypass)",
    paper="§4 (prefetch-ahead distance)",
    tags=("ablation", "distance"),
    grid=Grid(axes=(("workload", BASE),), build=_ahead_build),
    panels=(
        PanelDef(
            id="ablation-prefetch-ahead-speedup",
            title="Discontinuity speedup vs prefetch-ahead distance (CMP, bypass)",
            rows=_AHEAD_ROWS,
            cols=workload_axis(BASE),
            cell=_ahead_speedup,
            unit="speedup, X",
            notes=("paper: 4 lines balances timeliness against accuracy/bandwidth",),
        ),
        PanelDef(
            id="ablation-prefetch-ahead-accuracy",
            title="Discontinuity accuracy vs prefetch-ahead distance (CMP, bypass)",
            rows=_AHEAD_ROWS,
            cols=workload_axis(BASE),
            cell=_ahead_accuracy,
            unit="% useful/issued",
            fmt=".1f",
        ),
    ),
    expectations=(
        Compare(
            panel="ablation-prefetch-ahead-accuracy",
            row="ahead=1",
            other_row="ahead=8",
            op=">",
            note="accuracy falls with distance",
        ),
        Compare(
            panel="ablation-prefetch-ahead-speedup",
            row="ahead=4",
            other_row="ahead=1",
            op=">",
            note="timeliness: ahead=4 beats ahead=1 on performance",
        ),
    ),
)

# --------------------------------------------------------------------------
# §4 — probe-ahead vs probe-current-line timing

_PROBE_AHEAD_VARIANTS = (
    ("Probe-ahead (paper)", "discontinuity"),
    ("Probe current line", "discontinuity-noprobeahead"),
)


def _probe_ahead_build(ctx: ExperimentContext, workload: str) -> List[RunSpec]:
    return [ctx.spec(workload, 4)] + [
        ctx.spec(workload, 4, scheme, l2_policy="bypass")
        for scheme in ("discontinuity", "discontinuity-noprobeahead")
    ]


def _late_fraction(runs: Runs, scheme: Any, workload: Any) -> float:
    result = runs.result(workload, 4, scheme, l2_policy="bypass")
    useful = sum(core.prefetch.useful for core in result.cores)
    late = sum(core.prefetch.useful_late for core in result.cores)
    return 100.0 * late / useful if useful else 0.0


_PROBE_AHEAD_ROWS = tuple((label, scheme) for label, scheme in _PROBE_AHEAD_VARIANTS)

ABLATION_PROBE_AHEAD = Experiment(
    name="ablation-probe-ahead",
    title="Probe-ahead vs probe-current-line discontinuity timing (CMP)",
    paper="§4 (probe-ahead window)",
    tags=("ablation", "timing"),
    grid=Grid(axes=(("workload", BASE),), build=_probe_ahead_build),
    panels=(
        PanelDef(
            id="ablation-probe-ahead-speedup",
            title="Discontinuity speedup: probe-ahead vs probe-current (CMP)",
            rows=_PROBE_AHEAD_ROWS,
            cols=workload_axis(BASE),
            cell=cmp_speedup(),
            unit="speedup, X",
        ),
        PanelDef(
            id="ablation-probe-ahead-late",
            title="Late useful prefetches: probe-ahead vs probe-current (CMP)",
            rows=_PROBE_AHEAD_ROWS,
            cols=workload_axis(BASE),
            cell=_late_fraction,
            unit="% of useful prefetches arriving late",
            fmt=".1f",
        ),
    ),
    expectations=(
        Compare(
            panel="ablation-probe-ahead-late",
            row="Probe current line",
            other_row="Probe-ahead (paper)",
            op=">=",
            offset=-1.0,
            note="probing only the current line makes more useful prefetches late",
        ),
        Compare(
            panel="ablation-probe-ahead-speedup",
            row="Probe-ahead (paper)",
            other_row="Probe current line",
            op=">=",
            offset=-0.03,
            note="probe-current never performs better",
        ),
    ),
)

# --------------------------------------------------------------------------
# §4.1 — LIFO vs FIFO prefetch queue


def _queue_build(ctx: ExperimentContext, workload: str) -> List[RunSpec]:
    return [ctx.spec(workload, 4)] + [
        ctx.spec(workload, 4, "discontinuity", l2_policy="bypass", queue_lifo=lifo)
        for lifo in (True, False)
    ]


def _queue_speedup(runs: Runs, lifo: Any, workload: Any) -> float:
    return runs.speedup(
        workload, 4, "discontinuity", l2_policy="bypass", queue_lifo=lifo
    )


ABLATION_QUEUE_DISCIPLINE = Experiment(
    name="ablation-queue-discipline",
    title="LIFO vs FIFO prefetch queue (discontinuity, CMP, bypass)",
    paper="§4.1 (queue discipline)",
    tags=("ablation", "queue"),
    grid=Grid(axes=(("workload", BASE),), build=_queue_build),
    panels=(
        PanelDef(
            id="ablation-queue-discipline",
            title="Discontinuity speedup: LIFO vs FIFO prefetch queue (CMP)",
            rows=(("LIFO (paper)", True), ("FIFO", False)),
            cols=workload_axis(BASE),
            cell=_queue_speedup,
            unit="speedup, X",
        ),
    ),
    expectations=(
        Compare(
            panel="ablation-queue-discipline",
            row="LIFO (paper)",
            other_row="FIFO",
            op=">",
            offset=-0.05,
            note="LIFO de-emphasizes stale prefetches, never materially worse",
        ),
    ),
)

# --------------------------------------------------------------------------
# §4 — single-target table vs multi-target Markov predictor

#: §4 equal-storage comparison: (label, scheme, overrides).
TABLE_DESIGN_VARIANTS: Tuple[Tuple[str, str, Any], ...] = (
    ("Discontinuity 4096x1", "discontinuity", {"table_entries": 4096}),
    ("Markov 2048x2", "markov", {"table_entries": 2048, "targets_per_entry": 2}),
    (
        "Markov 4096x2 (2x storage)",
        "markov",
        {"table_entries": 4096, "targets_per_entry": 2},
    ),
)


def _table_design_build(ctx: ExperimentContext, workload: str) -> List[RunSpec]:
    return [ctx.spec(workload, 4)] + [
        ctx.spec(workload, 4, scheme, l2_policy="bypass", prefetcher_overrides=overrides)
        for _, scheme, overrides in TABLE_DESIGN_VARIANTS
    ]


def _table_design_coverage(runs: Runs, key: Any, workload: Any) -> float:
    scheme, overrides = key
    result = runs.result(
        workload, 4, scheme, l2_policy="bypass", prefetcher_overrides=overrides
    )
    return 100.0 * result.l1i_coverage


def _table_design_speedup(runs: Runs, key: Any, workload: Any) -> float:
    scheme, overrides = key
    return runs.speedup(
        workload, 4, scheme, l2_policy="bypass", prefetcher_overrides=overrides
    )


_TABLE_DESIGN_ROWS = tuple(
    (label, (scheme, overrides)) for label, scheme, overrides in TABLE_DESIGN_VARIANTS
)

ABLATION_TABLE_DESIGN = Experiment(
    name="ablation-table-design",
    title="Single-target discontinuity table vs multi-target Markov (CMP)",
    paper="§4 (table design, cf. Markov [8])",
    tags=("ablation", "table"),
    grid=Grid(axes=(("workload", BASE),), build=_table_design_build),
    panels=(
        PanelDef(
            id="ablation-table-design-coverage",
            title="L1 coverage: single-target vs multi-target tables (CMP)",
            rows=_TABLE_DESIGN_ROWS,
            cols=workload_axis(BASE),
            cell=_table_design_coverage,
            unit="% coverage",
            fmt=".1f",
            notes=("paper §4: one target per entry suffices at half the storage",),
        ),
        PanelDef(
            id="ablation-table-design-speedup",
            title="Speedup: single-target vs multi-target tables (CMP)",
            rows=_TABLE_DESIGN_ROWS,
            cols=workload_axis(BASE),
            cell=_table_design_speedup,
            unit="speedup, X",
        ),
    ),
    expectations=(
        Compare(
            panel="ablation-table-design-coverage",
            row="Discontinuity 4096x1",
            other_row="Markov 2048x2",
            op=">",
            offset=-3.0,
            note="at equal storage the single-target design is at least as good",
        ),
        Compare(
            panel="ablation-table-design-coverage",
            row="Markov 4096x2 (2x storage)",
            other_row="Discontinuity 4096x1",
            op="<",
            offset=6.0,
            note="even doubling the Markov storage buys little over single-target",
        ),
    ),
)

# --------------------------------------------------------------------------
# §2.4 — the used-bit re-prefetch filter [Luk & Mowry]


def _hint_build(ctx: ExperimentContext, workload: str) -> List[RunSpec]:
    return [ctx.spec(workload, 4)] + [
        ctx.spec(
            workload,
            4,
            "discontinuity",
            l2_policy="bypass",
            useless_hint_filter=hint_filter,
        )
        for hint_filter in (False, True)
    ]


def _hint_result(runs: Runs, hint_filter: Any, workload: Any) -> Any:
    return runs.result(
        workload,
        4,
        "discontinuity",
        l2_policy="bypass",
        useless_hint_filter=hint_filter,
    )


def _hint_accuracy(runs: Runs, hint_filter: Any, workload: Any) -> float:
    return 100.0 * _hint_result(runs, hint_filter, workload).prefetch_accuracy


def _hint_speedup(runs: Runs, hint_filter: Any, workload: Any) -> float:
    return runs.speedup(
        workload,
        4,
        "discontinuity",
        l2_policy="bypass",
        useless_hint_filter=hint_filter,
    )


_HINT_ROWS = (("No re-prefetch filter", False), ("Used-bit filter (§2.4)", True))

ABLATION_USELESS_HINT = Experiment(
    name="ablation-useless-hint",
    title="The §2.4 used-bit re-prefetch filter on/off (CMP)",
    paper="§2.4 (used-bit filter)",
    tags=("ablation", "filter"),
    grid=Grid(axes=(("workload", BASE),), build=_hint_build),
    panels=(
        PanelDef(
            id="ablation-useless-hint-accuracy",
            title="Prefetch accuracy with the used-bit re-prefetch filter (CMP)",
            rows=_HINT_ROWS,
            cols=workload_axis(BASE),
            cell=_hint_accuracy,
            unit="% useful/issued",
            fmt=".1f",
        ),
        PanelDef(
            id="ablation-useless-hint-speedup",
            title="Speedup with the used-bit re-prefetch filter (CMP)",
            rows=_HINT_ROWS,
            cols=workload_axis(BASE),
            cell=_hint_speedup,
            unit="speedup, X",
        ),
    ),
    expectations=(
        Compare(
            panel="ablation-useless-hint-accuracy",
            row="Used-bit filter (§2.4)",
            other_row="No re-prefetch filter",
            op=">=",
            offset=-1.0,
            note="dropping known-useless re-prefetches never hurts accuracy",
        ),
        Compare(
            panel="ablation-useless-hint-speedup",
            row="Used-bit filter (§2.4)",
            other_row="No re-prefetch filter",
            op=">",
            offset=-0.05,
            note="performance stays competitive",
        ),
    ),
)

# --------------------------------------------------------------------------
# substrate sensitivity — inclusive vs non-inclusive shared L2


def _inclusion_build(
    ctx: ExperimentContext, inclusive: bool, workload: str
) -> List[RunSpec]:
    return [
        ctx.spec(workload, 4, l2_inclusive=inclusive),
        ctx.spec(
            workload, 4, "discontinuity", l2_policy="bypass", l2_inclusive=inclusive
        ),
    ]


def _inclusion_speedup(runs: Runs, inclusive: Any, workload: Any) -> float:
    return runs.speedup(
        workload,
        4,
        "discontinuity",
        base={"l2_inclusive": inclusive},
        l2_policy="bypass",
        l2_inclusive=inclusive,
    )


def _inclusion_l1i(runs: Runs, inclusive: Any, workload: Any) -> float:
    return 100.0 * runs.result(workload, 4, l2_inclusive=inclusive).l1i_miss_rate


_INCLUSION_ROWS = (("Non-inclusive (default)", False), ("Inclusive", True))

ABLATION_INCLUSION = Experiment(
    name="ablation-inclusion",
    title="Inclusive vs non-inclusive shared L2 (substrate sensitivity)",
    paper="beyond the paper (inclusion policy unstated)",
    tags=("ablation", "substrate"),
    grid=Grid(
        axes=(("inclusive", (False, True)), ("workload", BASE)),
        build=_inclusion_build,
    ),
    panels=(
        PanelDef(
            id="ablation-inclusion-speedup",
            title="Discontinuity speedup: non-inclusive vs inclusive L2 (CMP)",
            rows=_INCLUSION_ROWS,
            cols=workload_axis(BASE),
            cell=_inclusion_speedup,
            unit="speedup, X",
        ),
        PanelDef(
            id="ablation-inclusion-l1i",
            title="Baseline L1I miss rate: non-inclusive vs inclusive L2 (CMP)",
            rows=_INCLUSION_ROWS,
            cols=workload_axis(BASE),
            cell=_inclusion_l1i,
            unit="% per instruction",
        ),
    ),
    expectations=(
        Band(
            panel="ablation-inclusion-speedup",
            lo=1.05,
            note="the discontinuity prefetcher pays off under either policy",
        ),
        Spread(
            panel="ablation-inclusion-speedup",
            rows=("Non-inclusive (default)", "Inclusive"),
            hi=0.15,
            note="the policy choice moves the result only modestly",
        ),
        Compare(
            panel="ablation-inclusion-l1i",
            row="Inclusive",
            other_row="Non-inclusive (default)",
            op=">=",
            offset=-0.01,
            note="back-invalidation can only add baseline L1I misses",
        ),
    ),
)

# --------------------------------------------------------------------------
# substrate sensitivity — cache replacement policy

REPLACEMENT_POLICIES = ("lru", "plru", "fifo", "random")


def _replacement_build(
    ctx: ExperimentContext, policy: str, workload: str
) -> List[RunSpec]:
    matched = {"l1_replacement": policy, "l2_replacement": policy}
    return [
        ctx.spec(workload, 4, **matched),
        ctx.spec(workload, 4, "discontinuity", l2_policy="bypass", **matched),
    ]


def _replacement_l1i(runs: Runs, policy: Any, workload: Any) -> float:
    base = runs.result(workload, 4, l1_replacement=policy, l2_replacement=policy)
    return 100.0 * base.l1i_miss_rate


def _replacement_speedup(runs: Runs, policy: Any, workload: Any) -> float:
    matched = {"l1_replacement": policy, "l2_replacement": policy}
    return runs.speedup(
        workload, 4, "discontinuity", base=matched, l2_policy="bypass", **matched
    )


def _replacement_rows() -> Tuple[Tuple[str, str], ...]:
    return tuple((policy.upper(), policy) for policy in REPLACEMENT_POLICIES)


ABLATION_REPLACEMENT = Experiment(
    name="ablation-replacement",
    title="Cache replacement policy sensitivity (substrate check)",
    paper="beyond the paper (simulator uses LRU)",
    tags=("ablation", "substrate"),
    grid=Grid(
        axes=(("policy", REPLACEMENT_POLICIES), ("workload", BASE)),
        build=_replacement_build,
    ),
    panels=(
        PanelDef(
            id="ablation-replacement-l1i",
            title="Baseline L1I miss rate by replacement policy (CMP)",
            rows=_replacement_rows(),
            cols=workload_axis(BASE),
            cell=_replacement_l1i,
            unit="% per instruction",
        ),
        PanelDef(
            id="ablation-replacement-speedup",
            title="Discontinuity speedup by replacement policy (CMP)",
            rows=_replacement_rows(),
            cols=workload_axis(BASE),
            cell=_replacement_speedup,
            unit="speedup, X",
        ),
    ),
    expectations=(
        Band(
            panel="ablation-replacement-speedup",
            lo=1.05,
            note="the discontinuity prefetcher pays off under every policy",
        ),
        Spread(
            panel="ablation-replacement-speedup",
            rows=("LRU", "PLRU", "FIFO", "RANDOM"),
            hi=0.2,
            note="only modest spread between policies",
        ),
        Compare(
            panel="ablation-replacement-l1i",
            row="PLRU",
            other_row="LRU",
            op="<=",
            factor=1.15,
            note="PLRU tracks LRU closely on baseline miss rate",
        ),
        Compare(
            panel="ablation-replacement-l1i",
            row="PLRU",
            other_row="LRU",
            op=">=",
            factor=0.85,
        ),
    ),
)

#: this module's declarations, registry order.
EXPERIMENTS = (
    ABLATION_FILTERING,
    ABLATION_EVICTION_COUNTER,
    ABLATION_PREFETCH_AHEAD,
    ABLATION_PROBE_AHEAD,
    ABLATION_QUEUE_DISCIPLINE,
    ABLATION_TABLE_DESIGN,
    ABLATION_USELESS_HINT,
    ABLATION_INCLUSION,
    ABLATION_REPLACEMENT,
)
