"""Process-parallel sweep executor with layered result caching.

The experiment drivers declare their configurations as
:class:`~repro.eval.runspec.RunSpec` lists and submit them in one batch to
:func:`run_specs`, which resolves each spec through three layers:

1. **in-process memo** — repeat requests within one process are free (the
   paper's Figures 5, 6 and 7 read the same runs; so do many ablations);
2. **persistent disk cache** (:mod:`repro.eval.diskcache`) — repeat
   invocations across processes and sessions replay from
   ``$REPRO_CACHE_DIR`` instead of re-simulating;
3. **simulation** — remaining specs run under a
   :class:`~concurrent.futures.ProcessPoolExecutor` sized by
   ``$REPRO_JOBS`` (default: all cores), or serially in-process when the
   effective job count is 1.

Workers return results in the disk cache's plain-data form, which the
parent rehydrates and persists; JSON round-trips ints and floats exactly,
so parallel results are bit-identical to a serial ``run_system`` call.
Submission is ordered by :meth:`RunSpec.trace_key` so specs replaying the
same synthetic traces tend to land on the same worker, whose
per-process :func:`~repro.eval.runner.get_traces` memo then serves them
without regenerating.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, Optional

from repro.cmp.system import SystemResult
from repro.eval import diskcache
from repro.eval.runspec import RunSpec, dedupe_specs

#: environment variable bounding the worker-process count; 1 forces the
#: in-process serial path (no pool, no pickling).
JOBS_ENV = "REPRO_JOBS"

_MEMO: Dict[RunSpec, SystemResult] = {}


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit arg → ``$REPRO_JOBS`` → cpu count."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(f"{JOBS_ENV} must be an integer, got {env!r}") from None
        else:
            jobs = os.cpu_count() or 1
    return max(1, jobs)


def clear_memo() -> None:
    """Drop the in-process result memo (the disk cache is untouched)."""
    _MEMO.clear()


def memo_size() -> int:
    return len(_MEMO)


def _simulate(spec: RunSpec) -> SystemResult:
    """Run one spec from scratch in this process."""
    from repro.eval.runner import run_system

    kwargs = spec.run_kwargs()
    if spec.software_prefetch:
        from repro.swpf.prefetcher import software_prefetcher_for

        workload, seed = spec.workload, spec.seed
        kwargs["prefetcher_factory"] = lambda core: software_prefetcher_for(
            workload, seed, core=core
        )
    return run_system(**kwargs)


def _worker(spec: RunSpec) -> Dict:
    """Pool entry point: simulate and return the plain-data payload.

    Returning the payload (not the live ``SystemResult``) keeps the parallel
    path identical to a disk-cache hit — and sidesteps unpicklable state
    such as the software-prefetch factory closure.  Trace generation inside
    the worker goes through ``get_traces``, whose module-level memo persists
    for the worker's lifetime, so same-trace specs assigned to one worker
    share a single generation.
    """
    return diskcache.result_to_payload(_simulate(spec), spec)


def execute_spec(spec: RunSpec) -> SystemResult:
    """Resolve one spec through memo → disk cache → in-process simulation."""
    result = _MEMO.get(spec)
    if result is not None:
        return result
    result = diskcache.load(spec)
    if result is None:
        result = _simulate(spec)
        diskcache.store(spec, result)
    _MEMO[spec] = result
    return result


def run_specs(
    specs: Iterable[RunSpec], jobs: Optional[int] = None
) -> Dict[RunSpec, SystemResult]:
    """Execute a batch of specs; returns a spec → result mapping.

    Duplicates are collapsed, cached specs (memo or disk) are served
    without simulation, and the remainder fans out across worker processes
    (serial in-process when the effective job count is 1).
    """
    unique = dedupe_specs(specs)
    results: Dict[RunSpec, SystemResult] = {}
    pending = []
    for spec in unique:
        cached = _MEMO.get(spec)
        if cached is None:
            cached = diskcache.load(spec)
            if cached is not None:
                _MEMO[spec] = cached
        if cached is not None:
            results[spec] = cached
        else:
            pending.append(spec)
    if not pending:
        return results

    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(pending) == 1:
        for spec in pending:
            results[spec] = execute_spec(spec)
        return results

    pending.sort(key=lambda spec: spec.trace_key())
    with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
        futures = [(spec, pool.submit(_worker, spec)) for spec in pending]
        for spec, future in futures:
            result = diskcache.payload_to_result(future.result())
            # The parent is the single cache writer; workers stay read-free
            # so a shared cache directory never sees write races.
            diskcache.store(spec, result)
            _MEMO[spec] = result
            results[spec] = result
    return results
