"""Process-parallel sweep executor with layered caching and fault tolerance.

The experiment drivers declare their configurations as
:class:`~repro.eval.runspec.RunSpec` lists and submit them in one batch to
:func:`run_specs`, which resolves each spec through three layers:

1. **in-process memo** — repeat requests within one process are free (the
   paper's Figures 5, 6 and 7 read the same runs; so do many ablations);
2. **persistent disk cache** (:mod:`repro.eval.diskcache`) — repeat
   invocations across processes and sessions replay from
   ``$REPRO_CACHE_DIR`` instead of re-simulating;
3. **simulation** — remaining specs run under a
   :class:`~concurrent.futures.ProcessPoolExecutor` sized by
   ``$REPRO_JOBS`` (default: all cores), or serially in-process when the
   effective job count is 1.

Workers return results in the disk cache's plain-data form, which the
parent rehydrates and persists; JSON round-trips ints and floats exactly,
so parallel results are bit-identical to a serial ``run_system`` call.
Submission is ordered by :meth:`RunSpec.trace_key` so specs replaying the
same synthetic traces tend to land on the same worker, whose
per-process :func:`~repro.eval.runner.get_traces` memo then serves them
without regenerating.

Failure semantics (see ``docs/performance.md``): results are harvested
with :func:`concurrent.futures.as_completed` and **checkpointed the moment
their worker finishes** — persisted to the disk cache and the memo before
any later failure can propagate.  A worker exception earns the spec one
in-parent serial retry (a crash may be pool-related, not spec-related); a
:class:`~concurrent.futures.process.BrokenProcessPool` rebuilds the pool
once and then degrades to serial execution for the remainder;
``KeyboardInterrupt`` cancels queued work and re-raises with everything
already harvested safely on disk.  Specs that still fail surface in one
terminal :class:`SweepError` carrying per-spec tracebacks, the salvaged
results and the batch's :class:`SweepReport`.
"""

from __future__ import annotations

import json
import os
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.cmp.system import SystemResult
from repro.envvars import REPRO_JOBS
from repro.eval import diskcache
from repro.eval.runspec import RunSpec, dedupe_specs
from repro.util import clock

#: environment variable bounding the worker-process count; 1 forces the
#: in-process serial path (no pool, no pickling).
JOBS_ENV = REPRO_JOBS

_MEMO: Dict[RunSpec, SystemResult] = {}

#: progress callback: ``(done, total, spec, source, seconds)`` where
#: ``source`` is one of ``memo`` / ``disk`` / ``simulated`` / ``retried``
#: / ``failed`` and ``seconds`` is the simulation time (0 for cache hits).
ProgressFn = Callable[[int, int, RunSpec, str, float], None]


@dataclass
class SweepReport:
    """Observability record for one :func:`run_specs` batch.

    The counters partition the batch exactly:
    ``memo_hits + disk_hits + simulated + retried + failed == total``.
    """

    total: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    #: specs simulated successfully on the first attempt (pool or serial).
    simulated: int = 0
    #: specs whose worker failed but whose in-parent serial retry succeeded.
    retried: int = 0
    #: specs that failed even after the retry (carried by :class:`SweepError`).
    failed: int = 0
    #: times a broken process pool was rebuilt (at most 1 per batch).
    pool_rebuilds: int = 0
    #: True when the rebuilt pool also broke and the remainder ran serially.
    degraded_to_serial: bool = False
    wall_seconds: float = 0.0
    #: optional caller-supplied sweep name (figure driver, CLI invocation).
    label: Optional[str] = None
    #: simulation seconds per spec (cache hits are not timed).
    durations: Dict[RunSpec, float] = field(default_factory=dict)

    def completed(self) -> int:
        """Specs that produced a result through any path."""
        return self.memo_hits + self.disk_hits + self.simulated + self.retried

    def summary_json(self) -> str:
        """The one-line JSON form (for CI logs); see :func:`report_to_summary`."""
        return json.dumps(report_to_summary(self), sort_keys=True)


def report_to_summary(report: SweepReport) -> Dict[str, Any]:
    """Plain-data summary of a sweep, suitable for one-line JSON CI logs.

    Registered as a lint R4 payload builder: everything here must stay
    JSON-safe plain data.
    """
    summary: Dict[str, Any] = {
        "event": "sweep",
        "label": report.label,
        "total": report.total,
        "memo_hits": report.memo_hits,
        "disk_hits": report.disk_hits,
        "simulated": report.simulated,
        "retried": report.retried,
        "failed": report.failed,
        "pool_rebuilds": report.pool_rebuilds,
        "degraded_to_serial": report.degraded_to_serial,
        "wall_seconds": round(report.wall_seconds, 3),
    }
    slowest_spec = None
    slowest_seconds = 0.0
    for spec, seconds in report.durations.items():
        if slowest_spec is None or seconds > slowest_seconds:
            slowest_spec, slowest_seconds = spec, seconds
    if slowest_spec is not None:
        summary["slowest_spec"] = slowest_spec.describe()
        summary["slowest_seconds"] = round(slowest_seconds, 3)
    return summary


class SweepError(RuntimeError):
    """One or more specs of a batch failed after their retry.

    Every result that completed before the failure was already persisted
    to the disk cache and the in-process memo (checkpoint on completion),
    so re-running the batch simulates only the failed specs.

    Attributes: ``failures`` maps each failed spec to its formatted
    traceback(s); ``results`` holds everything salvaged; ``report`` is the
    batch's :class:`SweepReport`.
    """

    def __init__(
        self,
        failures: Dict[RunSpec, str],
        results: Dict[RunSpec, SystemResult],
        report: SweepReport,
    ) -> None:
        self.failures = dict(failures)
        self.results = dict(results)
        self.report = report
        label = f" [{report.label}]" if report.label else ""
        lines = [
            f"{len(self.failures)} of {report.total} specs failed{label}; "
            f"{len(self.results)} results salvaged (persisted to the caches)"
        ]
        for spec, tb in self.failures.items():
            lines.append(f"--- {spec.describe()} ---\n{tb.rstrip()}")
        super().__init__("\n".join(lines))


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit arg → ``$REPRO_JOBS`` → cpu count."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(f"{JOBS_ENV} must be an integer, got {env!r}") from None
        else:
            jobs = os.cpu_count() or 1
    return max(1, jobs)


def clear_memo() -> None:
    """Drop the in-process result memo (the disk cache is untouched)."""
    _MEMO.clear()


def memo_size() -> int:
    return len(_MEMO)


def _simulate(spec: RunSpec) -> SystemResult:
    """Run one spec from scratch in this process."""
    from repro.eval.runner import run_system

    kwargs = spec.run_kwargs()
    if spec.software_prefetch:
        from repro.swpf.prefetcher import software_prefetcher_for

        workload, seed = spec.workload, spec.seed
        kwargs["prefetcher_factory"] = lambda core: software_prefetcher_for(
            workload, seed, core=core
        )
    return run_system(**kwargs)


def _worker(spec: RunSpec) -> Dict:
    """Pool entry point: simulate and return the plain-data payload.

    Returning the payload (not the live ``SystemResult``) keeps the parallel
    path identical to a disk-cache hit — and sidesteps unpicklable state
    such as the software-prefetch factory closure.  Traces inside the
    worker resolve through the compiled-trace layers: the parent's
    pre-pool :func:`~repro.eval.runner.precompile_for_specs` pass has
    usually populated the on-disk trace store, so workers load packed
    files; otherwise the worker's own module-level memos persist for its
    lifetime, so same-trace specs assigned to one worker share a single
    generation.  The payload carries the worker's wall time under
    ``wall_seconds``; the parent pops it before rehydrating.
    """
    started = clock.now()
    payload = diskcache.result_to_payload(_simulate(spec), spec)
    payload["wall_seconds"] = clock.now() - started
    return payload


def _simulate_and_store(spec: RunSpec) -> SystemResult:
    """Simulate a *known* cache miss in-process and persist the result.

    Skips the memo/disk probes — callers (the batch pre-scan, the retry
    path) have already established the miss, so re-stat'ing the cache per
    spec would be pure overhead.
    """
    result = _simulate(spec)
    diskcache.store(spec, result)
    _MEMO[spec] = result
    return result


def execute_spec(spec: RunSpec) -> SystemResult:
    """Resolve one spec through memo → disk cache → in-process simulation."""
    result = _MEMO.get(spec)
    if result is not None:
        return result
    result = diskcache.load(spec)
    if result is None:
        result = _simulate_and_store(spec)
    else:
        _MEMO[spec] = result
    return result


def run_specs(
    specs: Iterable[RunSpec],
    jobs: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    label: Optional[str] = None,
) -> Dict[RunSpec, SystemResult]:
    """Execute a batch of specs; returns a spec → result mapping.

    Thin wrapper over :func:`run_specs_report` for callers that do not
    need the :class:`SweepReport`.
    """
    results, _ = run_specs_report(specs, jobs=jobs, progress=progress, label=label)
    return results


def run_specs_report(
    specs: Iterable[RunSpec],
    jobs: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    label: Optional[str] = None,
) -> Tuple[Dict[RunSpec, SystemResult], SweepReport]:
    """Execute a batch of specs; returns ``(results, report)``.

    Duplicates are collapsed, cached specs (memo or disk) are served
    without simulation, and the remainder fans out across worker processes
    (serial in-process when the effective job count is 1).  Completed
    results are persisted the moment they land, so a failure mid-batch
    never discards a sibling's finished work; specs that fail after their
    retry raise :class:`SweepError` (with the salvaged results attached).
    """
    unique = dedupe_specs(specs)
    report = SweepReport(total=len(unique), label=label)
    watch = clock.Stopwatch()
    results: Dict[RunSpec, SystemResult] = {}
    failures: Dict[RunSpec, str] = {}
    done = 0

    def emit(spec: RunSpec, source: str, seconds: float = 0.0) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, report.total, spec, source, seconds)

    pending: List[RunSpec] = []
    for spec in unique:
        source = "memo"
        cached = _MEMO.get(spec)
        if cached is None:
            cached = diskcache.load(spec)
            if cached is not None:
                _MEMO[spec] = cached
                source = "disk"
        if cached is not None:
            results[spec] = cached
            if source == "memo":
                report.memo_hits += 1
            else:
                report.disk_hits += 1
            emit(spec, source)
        else:
            pending.append(spec)

    if pending:
        jobs = resolve_jobs(jobs)
        if jobs <= 1 or len(pending) == 1:
            _run_serial(pending, results, failures, report, emit)
        else:
            _precompile_pending(pending)
            _run_pool(pending, jobs, results, failures, report, emit)

    report.wall_seconds = watch.elapsed()
    if failures:
        report.failed = len(failures)
        raise SweepError(failures, results, report)
    return results, report


def _precompile_pending(pending: List[RunSpec]) -> None:
    """Populate the on-disk trace store for *pending* before pool dispatch.

    With the store warm, every worker's ``run_system`` loads packed trace
    files instead of re-resolving its workload through the trace-source
    registry (synthesis for the synthetic profiles, stream replay for
    ingested ``external:<name>`` sources) per process.  Purely an
    optimization: any failure here is swallowed, and the specs it would
    have served simply produce their own traces in the workers (where a
    real trace problem resurfaces with per-spec isolation).
    """
    try:
        from repro.eval.runner import precompile_for_specs

        precompile_for_specs(pending)
    except Exception:
        pass


def _run_serial(
    pending: List[RunSpec],
    results: Dict[RunSpec, SystemResult],
    failures: Dict[RunSpec, str],
    report: SweepReport,
    emit: Callable[..., None],
) -> None:
    """In-process execution of known cache misses, isolating failures.

    A failing spec is recorded and skipped — its siblings still run (and
    persist).  No retry here: re-running the same inputs in the same
    process would fail identically.
    """
    for spec in pending:
        watch = clock.Stopwatch()
        try:
            result = _simulate_and_store(spec)
        except KeyboardInterrupt:
            raise
        except Exception:
            failures[spec] = traceback.format_exc()
            emit(spec, "failed", watch.elapsed())
            continue
        report.simulated += 1
        report.durations[spec] = watch.elapsed()
        results[spec] = result
        emit(spec, "simulated", report.durations[spec])


def _run_pool(
    pending: List[RunSpec],
    jobs: int,
    results: Dict[RunSpec, SystemResult],
    failures: Dict[RunSpec, str],
    report: SweepReport,
    emit: Callable[..., None],
) -> None:
    """Pool execution with checkpoint-on-completion harvesting.

    A broken pool is rebuilt once; if the rebuild also breaks, the
    remainder degrades to serial in-process execution.  Specs whose worker
    raised an ordinary exception get one in-parent serial retry at the end
    (a worker crash may be pool-related — OOM kill, pickling — rather than
    spec-related).
    """
    remaining = sorted(pending, key=lambda spec: spec.trace_key())
    worker_errors: Dict[RunSpec, str] = {}
    for attempt in range(2):
        if not remaining:
            break
        if attempt:
            report.pool_rebuilds += 1
        broken = _pool_attempt(remaining, jobs, results, worker_errors, report, emit)
        if not broken:
            break
    if remaining:
        # The rebuilt pool broke too; finish the batch without a pool.
        report.degraded_to_serial = True
        _run_serial(remaining, results, failures, report, emit)

    for spec, first_error in worker_errors.items():
        watch = clock.Stopwatch()
        try:
            result = _simulate_and_store(spec)
        except KeyboardInterrupt:
            raise
        except Exception:
            failures[spec] = (
                f"{first_error.rstrip()}\n\nin-parent serial retry also failed:\n"
                f"{traceback.format_exc()}"
            )
            emit(spec, "failed", watch.elapsed())
            continue
        report.retried += 1
        report.durations[spec] = watch.elapsed()
        results[spec] = result
        emit(spec, "retried", report.durations[spec])


def _pool_attempt(
    remaining: List[RunSpec],
    jobs: int,
    results: Dict[RunSpec, SystemResult],
    worker_errors: Dict[RunSpec, str],
    report: SweepReport,
    emit: Callable[..., None],
) -> bool:
    """One ``ProcessPoolExecutor`` pass over *remaining* (mutated in place).

    Harvests futures as they complete, persisting each result immediately.
    Returns True when the pool broke; the specs that neither completed nor
    errored stay in *remaining* for the caller to re-dispatch.
    """
    harvested: Set[RunSpec] = set()
    broken = False
    interrupted = False
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(remaining)))
    try:
        future_map = {pool.submit(_worker, spec): spec for spec in remaining}
        for future in as_completed(future_map):
            spec = future_map[future]
            try:
                payload = future.result()
            except BrokenProcessPool:
                # The pool is gone; siblings' futures resolve too (some
                # with results that already landed) — keep draining.
                broken = True
                continue
            except Exception:
                worker_errors[spec] = traceback.format_exc()
                harvested.add(spec)
                continue
            seconds = float(payload.pop("wall_seconds", 0.0))
            result = diskcache.payload_to_result(payload)
            # Checkpoint on completion: persist *now*, so this result
            # survives any later failure in the batch.  The parent is the
            # single cache writer; workers stay read-free so a shared
            # cache directory never sees write races.
            diskcache.store(spec, result)
            _MEMO[spec] = result
            results[spec] = result
            report.simulated += 1
            report.durations[spec] = seconds
            harvested.add(spec)
            emit(spec, "simulated", seconds)
    except BrokenProcessPool:
        # Submission itself hit the broken pool.
        broken = True
    except KeyboardInterrupt:
        # Hand the terminal back fast: drop queued work, don't wait for
        # running workers.  Everything harvested so far is on disk.
        interrupted = True
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    finally:
        if not interrupted:
            pool.shutdown(wait=True, cancel_futures=True)
    remaining[:] = [spec for spec in remaining if spec not in harvested]
    return broken
