"""Figure 10 — miss coverage vs. discontinuity-table size.

Paper: "Prefetch coverage achieved with various sizes of the next-4-line
discontinuity predictor; (i) L1 cache (ii) L2 cache (4-way CMP)", for
table sizes 256–8192 entries plus the next-4-lines (tagged) reference.

Expected shape (paper §7):

- larger tables cover more, but the curve is flat at the top: the table
  can shrink 4× (8192 → 2048) with minimal coverage loss;
- every table size beats the next-4-line sequential prefetcher.
"""

from __future__ import annotations

from typing import List, Optional

from repro.eval.executor import run_specs
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale
from repro.eval.runner import DEFAULT_SEED, run_system_cached
from repro.eval.runspec import RunSpec
from repro.trace.synth.workloads import DISPLAY_NAMES, workload_names

#: the paper's sweep, largest first (legend order).
TABLE_SIZES = (8192, 4096, 2048, 1024, 512, 256)


def specs(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    """Every run Figure 10 reads, declared up front for batch submission."""
    workloads = workload_names() + ["mix"]
    out = [
        RunSpec.create(
            workload,
            4,
            "discontinuity",
            scale=scale,
            l2_policy="bypass",
            prefetcher_overrides={"table_entries": size},
            seed=seed,
        )
        for size in TABLE_SIZES
        for workload in workloads
    ]
    out += [
        RunSpec.create(workload, 4, "next-4-line", scale=scale, l2_policy="bypass", seed=seed)
        for workload in workloads
    ]
    return out


def run(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """Run Figure 10; returns panels (i) L1 and (ii) L2 coverage."""
    run_specs(specs(scale, seed), label="fig10")
    workloads = workload_names() + ["mix"]
    col_labels = [DISPLAY_NAMES[w] for w in workloads]

    row_labels = [f"{size}-entries" for size in TABLE_SIZES] + ["Next-4lines (tagged)"]
    l1_values: List[List[float]] = []
    l2_values: List[List[float]] = []

    for size in TABLE_SIZES:
        l1_row = []
        l2_row = []
        for workload in workloads:
            result = run_system_cached(
                workload,
                4,
                "discontinuity",
                scale=scale,
                l2_policy="bypass",
                prefetcher_overrides={"table_entries": size},
                seed=seed,
            )
            l1_row.append(100.0 * result.l1i_coverage)
            l2_row.append(100.0 * result.l2i_coverage)
        l1_values.append(l1_row)
        l2_values.append(l2_row)

    seq_l1 = []
    seq_l2 = []
    for workload in workloads:
        result = run_system_cached(
            workload, 4, "next-4-line", scale=scale, l2_policy="bypass", seed=seed
        )
        seq_l1.append(100.0 * result.l1i_coverage)
        seq_l2.append(100.0 * result.l2i_coverage)
    l1_values.append(seq_l1)
    l2_values.append(seq_l2)

    notes = [
        "paper: 4x table reduction costs minimal coverage; all sizes beat next-4-line",
    ]
    return [
        ExperimentResult(
            experiment="fig10i",
            title="L1 miss coverage vs. discontinuity table size (4-way CMP)",
            row_labels=row_labels,
            col_labels=col_labels,
            values=l1_values,
            unit="% coverage",
            fmt=".1f",
            notes=notes,
        ),
        ExperimentResult(
            experiment="fig10ii",
            title="L2 miss coverage vs. discontinuity table size (4-way CMP)",
            row_labels=row_labels,
            col_labels=col_labels,
            values=l2_values,
            unit="% coverage",
            fmt=".1f",
            notes=notes,
        ),
    ]
