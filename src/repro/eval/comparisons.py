"""Beyond-the-paper comparisons against the alternative prefetching styles
the paper's §2 surveys.

Three experiments:

- :func:`run_alternatives` — every prefetching *style* head-to-head on the
  4-way CMP: the sequential baseline, the classic history-based target
  prefetcher, the Markov multi-target predictor, the execution-based
  fetch-directed prefetcher, compiler-inserted software prefetching, and
  the paper's discontinuity prefetcher.
- :func:`run_execution_based` — the fetch-directed prefetcher across BTB
  sizes, quantifying the paper's §2.2 argument that commercial footprints
  need impractically large predictor state for execution-based schemes.
- :func:`run_software_prefetch` — the §2.3 cooperative split (software
  non-sequential + hardware sequential) vs. the all-hardware scheme.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cmp.system import SystemResult
from repro.eval.executor import run_specs
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale
from repro.eval.runner import DEFAULT_SEED, run_system_cached
from repro.eval.runspec import RunSpec
from repro.trace.synth.workloads import DISPLAY_NAMES, workload_names


def _metric_rows(
    results_by_label: Sequence[Tuple[str, Sequence[SystemResult]]],
    workloads: Sequence[str],
    baselines: Dict[str, SystemResult],
) -> Tuple[List[List[float]], List[List[float]], List[List[float]]]:
    speedups = []
    coverage = []
    accuracy = []
    for label, results in results_by_label:
        speedup_row = []
        coverage_row = []
        accuracy_row = []
        for workload, result in zip(workloads, results):
            base = baselines[workload]
            speedup_row.append(result.aggregate_ipc / base.aggregate_ipc)
            coverage_row.append(100.0 * result.l1i_coverage)
            accuracy_row.append(100.0 * result.prefetch_accuracy)
        speedups.append(speedup_row)
        coverage.append(coverage_row)
        accuracy.append(accuracy_row)
    return speedups, coverage, accuracy


#: head-to-head variant set: (label, scheme or None for software, overrides).
ALTERNATIVE_VARIANTS = [
    ("Next-4-lines (tagged)", "next-4-line", {}),
    ("Target prefetcher", "target", {}),
    ("Markov (multi-target)", "markov", {}),
    ("Fetch-directed (1K BTB)", "fdp", {"btb_entries": 1024}),
    ("Software + next-4-line", None, {}),  # §2.3 software prefetcher
    ("Discontinuity (paper)", "discontinuity", {}),
]


def _variant_spec(
    workload: str,
    scheme: Optional[str],
    overrides: Dict[str, Any],
    scale: Optional[ExperimentScale],
    seed: int,
) -> RunSpec:
    """One head-to-head run; ``scheme=None`` means the software prefetcher."""
    return RunSpec.create(
        workload,
        4,
        scheme or "none",
        scale=scale,
        l2_policy="bypass",
        prefetcher_overrides=overrides,
        software_prefetch=scheme is None,
        seed=seed,
    )


def specs_alternatives(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    workloads = workload_names()
    out = [
        RunSpec.create(workload, 4, "none", scale=scale, seed=seed)
        for workload in workloads
    ]
    out += [
        _variant_spec(workload, scheme, overrides, scale, seed)
        for _, scheme, overrides in ALTERNATIVE_VARIANTS
        for workload in workloads
    ]
    return out


def run_alternatives(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """All prefetching styles head-to-head (4-way CMP, bypass install)."""
    run_specs(specs_alternatives(scale, seed), label="comparison-alternatives")
    workloads = workload_names()
    col_labels = [DISPLAY_NAMES[w] for w in workloads]
    baselines = {
        workload: run_system_cached(workload, 4, "none", scale=scale, seed=seed)
        for workload in workloads
    }

    results_by_label = []
    for label, scheme, overrides in ALTERNATIVE_VARIANTS:
        results = [
            run_system_cached(
                workload,
                4,
                scheme or "none",
                scale=scale,
                l2_policy="bypass",
                prefetcher_overrides=overrides,
                software_prefetch=scheme is None,
                seed=seed,
            )
            for workload in workloads
        ]
        results_by_label.append((label, results))

    speedups, coverage, accuracy = _metric_rows(results_by_label, workloads, baselines)
    rows = [label for label, _ in results_by_label]
    return [
        ExperimentResult(
            experiment="comparison-alternatives-speedup",
            title="All prefetching styles: speedup (4-way CMP, bypass)",
            row_labels=rows,
            col_labels=col_labels,
            values=speedups,
            unit="speedup, X",
        ),
        ExperimentResult(
            experiment="comparison-alternatives-coverage",
            title="All prefetching styles: L1 coverage (4-way CMP)",
            row_labels=rows,
            col_labels=col_labels,
            values=coverage,
            unit="% coverage",
            fmt=".1f",
        ),
        ExperimentResult(
            experiment="comparison-alternatives-accuracy",
            title="All prefetching styles: accuracy (4-way CMP)",
            row_labels=rows,
            col_labels=col_labels,
            values=accuracy,
            unit="% useful/issued",
            fmt=".1f",
        ),
    ]


#: BTB sweep for the execution-based comparison.
FDP_BTB_SIZES = (1024, 4096, 16384, 65536)


def specs_execution_based(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    workloads = workload_names()
    out = [
        RunSpec.create(workload, 4, "none", scale=scale, seed=seed)
        for workload in workloads
    ]
    out += [
        RunSpec.create(
            workload,
            4,
            "fdp",
            scale=scale,
            l2_policy="bypass",
            prefetcher_overrides={"btb_entries": btb},
            seed=seed,
        )
        for btb in FDP_BTB_SIZES
        for workload in workloads
    ]
    out += [
        RunSpec.create(workload, 4, "discontinuity", scale=scale, l2_policy="bypass", seed=seed)
        for workload in workloads
    ]
    return out


def run_execution_based(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """Fetch-directed prefetching vs BTB size (4-way CMP)."""
    run_specs(specs_execution_based(scale, seed), label="comparison-execution-based")
    workloads = workload_names()
    col_labels = [DISPLAY_NAMES[w] for w in workloads]
    baselines = {
        workload: run_system_cached(workload, 4, "none", scale=scale, seed=seed)
        for workload in workloads
    }
    results_by_label = []
    for btb in FDP_BTB_SIZES:
        results = [
            run_system_cached(
                workload,
                4,
                "fdp",
                scale=scale,
                l2_policy="bypass",
                prefetcher_overrides={"btb_entries": btb},
                seed=seed,
            )
            for workload in workloads
        ]
        results_by_label.append((f"FDP {btb}-entry BTB", results))
    results_by_label.append(
        (
            "Discontinuity 8K (paper)",
            [
                run_system_cached(
                    workload, 4, "discontinuity", scale=scale, l2_policy="bypass", seed=seed
                )
                for workload in workloads
            ],
        )
    )
    speedups, coverage, _ = _metric_rows(results_by_label, workloads, baselines)
    rows = [label for label, _ in results_by_label]
    notes = [
        "paper §2.2: execution-based prefetching needs impractically large "
        "predictor state on commercial footprints"
    ]
    return [
        ExperimentResult(
            experiment="comparison-fdp-coverage",
            title="Fetch-directed prefetching: L1 coverage vs BTB size (CMP)",
            row_labels=rows,
            col_labels=col_labels,
            values=coverage,
            unit="% coverage",
            fmt=".1f",
            notes=notes,
        ),
        ExperimentResult(
            experiment="comparison-fdp-speedup",
            title="Fetch-directed prefetching: speedup vs BTB size (CMP)",
            row_labels=rows,
            col_labels=col_labels,
            values=speedups,
            unit="speedup, X",
            notes=notes,
        ),
    ]


#: off-chip bandwidth sweep (GB/s); 20 is the paper's CMP default.
BANDWIDTH_SWEEP_GBPS = (20.0, 10.0, 6.0, 4.0)

#: the accuracy-ordered schemes whose crossover the sweep exposes.
BANDWIDTH_SCHEMES = ["next-4-line", "discontinuity", "discontinuity-2nl"]


def specs_bandwidth_sensitivity(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    out = [
        RunSpec.create("db", 4, "none", scale=scale, offchip_gbps=gbps, seed=seed)
        for gbps in BANDWIDTH_SWEEP_GBPS
    ]
    out += [
        RunSpec.create(
            "db", 4, scheme, scale=scale, l2_policy="bypass", offchip_gbps=gbps, seed=seed
        )
        for scheme in BANDWIDTH_SCHEMES
        for gbps in BANDWIDTH_SWEEP_GBPS
    ]
    return out


def run_bandwidth_sensitivity(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """Prefetcher speedups vs. off-chip bandwidth (DB workload, CMP).

    The paper's §7 closes Figure 9 with: "in environments where off-chip
    bandwidth is constrained, the next-2-line discontinuity prefetcher may
    be a good choice."  This sweep makes that operating point explicit:
    as the link tightens, the accuracy-ordered schemes (2NL > next-4 >
    4NL-discontinuity) take over the performance ordering — wasted
    prefetches stop being free.
    """
    run_specs(specs_bandwidth_sensitivity(scale, seed), label="comparison-bandwidth")
    schemes = BANDWIDTH_SCHEMES
    col_labels = [f"{gbps:g} GB/s" for gbps in BANDWIDTH_SWEEP_GBPS]
    rows = []
    values = []
    from repro.prefetch.registry import prefetcher_display_name

    for scheme in schemes:
        row = []
        for gbps in BANDWIDTH_SWEEP_GBPS:
            base = run_system_cached(
                "db", 4, "none", scale=scale, offchip_gbps=gbps, seed=seed
            )
            result = run_system_cached(
                "db",
                4,
                scheme,
                scale=scale,
                l2_policy="bypass",
                offchip_gbps=gbps,
                seed=seed,
            )
            row.append(result.aggregate_ipc / base.aggregate_ipc)
        rows.append(prefetcher_display_name(scheme))
        values.append(row)
    return [
        ExperimentResult(
            experiment="comparison-bandwidth",
            title="Speedup vs off-chip bandwidth (DB, 4-way CMP, bypass)",
            row_labels=rows,
            col_labels=col_labels,
            values=values,
            unit="speedup, X",
            notes=[
                "paper §7: under constrained bandwidth the 2NL discontinuity "
                "prefetcher is the better choice — the crossover appears as "
                "the link tightens"
            ],
        )
    ]


#: core counts for the scaling extension (paper evaluates 1 and 4).
CORE_SCALING = (1, 2, 4, 8)


def specs_core_scaling(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    out = []
    for n_cores in CORE_SCALING:
        out.append(RunSpec.create("db", n_cores, "none", scale=scale, seed=seed))
        out.append(
            RunSpec.create(
                "db", n_cores, "discontinuity", scale=scale, l2_policy="bypass", seed=seed
            )
        )
    return out


def run_core_scaling(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """Extension: how the paper's effects scale with core count (DB).

    The paper evaluates a single core and a 4-way CMP; this sweep extends
    to 2 and 8 cores (off-chip bandwidth interpolated/extrapolated from
    the paper's two published points), showing that the shared-L2
    instruction pressure — and therefore the discontinuity prefetcher's
    value — grows with the core count.
    """
    run_specs(specs_core_scaling(scale, seed), label="comparison-core-scaling")
    col_labels = [f"{n} core{'s' if n > 1 else ''}" for n in CORE_SCALING]
    l2i_rates = []
    l2d_rates = []
    speedups = []
    for n_cores in CORE_SCALING:
        base = run_system_cached("db", n_cores, "none", scale=scale, seed=seed)
        prefetched = run_system_cached(
            "db", n_cores, "discontinuity", scale=scale, l2_policy="bypass", seed=seed
        )
        l2i_rates.append(100.0 * base.l2i_miss_rate)
        l2d_rates.append(100.0 * base.l2d_miss_rate)
        speedups.append(prefetched.aggregate_ipc / base.aggregate_ipc)
    return [
        ExperimentResult(
            experiment="comparison-core-scaling",
            title="Baseline L2 miss rates and discontinuity speedup vs cores (DB)",
            row_labels=[
                "Baseline L2I (% per instr)",
                "Baseline L2D (% per instr)",
                "Discontinuity speedup (X)",
            ],
            col_labels=col_labels,
            values=[l2i_rates, l2d_rates, speedups],
            notes=[
                "extension beyond the paper's 1/4-core points; bandwidth "
                "scaled per SystemConfig.resolve_bandwidth"
            ],
        )
    ]


def specs_software_prefetch(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    workloads = workload_names()
    out = [
        RunSpec.create(workload, 4, "none", scale=scale, seed=seed)
        for workload in workloads
    ]
    out += [
        RunSpec.create(
            workload, 4, "none", scale=scale, l2_policy="bypass",
            software_prefetch=True, seed=seed,
        )
        for workload in workloads
    ]
    out += [
        RunSpec.create(workload, 4, scheme, scale=scale, l2_policy="bypass", seed=seed)
        for scheme in ("next-4-line", "discontinuity")
        for workload in workloads
    ]
    return out


def run_software_prefetch(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """§2.3 cooperative software prefetching vs the hardware scheme (CMP)."""
    run_specs(specs_software_prefetch(scale, seed), label="comparison-software-prefetch")
    workloads = workload_names()
    col_labels = [DISPLAY_NAMES[w] for w in workloads]
    baselines = {
        workload: run_system_cached(workload, 4, "none", scale=scale, seed=seed)
        for workload in workloads
    }
    variants = []
    sw_results = [
        run_system_cached(
            workload,
            4,
            "none",
            scale=scale,
            l2_policy="bypass",
            software_prefetch=True,
            seed=seed,
        )
        for workload in workloads
    ]
    variants.append(("Software + next-4-line", sw_results))
    variants.append(
        (
            "Next-4-line only",
            [
                run_system_cached(
                    workload, 4, "next-4-line", scale=scale, l2_policy="bypass", seed=seed
                )
                for workload in workloads
            ],
        )
    )
    variants.append(
        (
            "Discontinuity (paper)",
            [
                run_system_cached(
                    workload, 4, "discontinuity", scale=scale, l2_policy="bypass", seed=seed
                )
                for workload in workloads
            ],
        )
    )
    speedups, coverage, accuracy = _metric_rows(variants, workloads, baselines)
    rows = [label for label, _ in variants]
    return [
        ExperimentResult(
            experiment="comparison-swpf-speedup",
            title="Software vs hardware non-sequential prefetching (CMP)",
            row_labels=rows,
            col_labels=col_labels,
            values=speedups,
            unit="speedup, X",
            notes=[
                "software plan uses perfect profile feedback (generous to §2.3)"
            ],
        ),
        ExperimentResult(
            experiment="comparison-swpf-coverage",
            title="Software vs hardware: L1 coverage (CMP)",
            row_labels=rows,
            col_labels=col_labels,
            values=coverage,
            unit="% coverage",
            fmt=".1f",
        ),
    ]
