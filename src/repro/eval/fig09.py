"""Figure 9 — prefetch accuracy and the next-2-line discontinuity variant.

Paper: "(i) Prefetch accuracy (4-way CMP) and (ii) Performance improvement
for a next-2-line discontinuity prefetcher (4-way CMP)."

Expected shape (paper §7):

- accuracy falls with aggressiveness: next-line (on miss) highest, the
  4-line discontinuity lowest;
- reducing the discontinuity prefetch-ahead distance to 2 lines
  (discont 2NL) raises accuracy by ~50% relative to the 4NL version;
- despite the shorter reach, discont-2NL still outperforms the
  next-4-line sequential prefetcher — attractive when off-chip bandwidth
  is constrained.
"""

from __future__ import annotations

from typing import List, Optional

from repro.eval.executor import run_specs
from repro.eval.fig06 import perf_panel
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale
from repro.eval.runner import DEFAULT_SEED, run_system_cached
from repro.eval.runspec import RunSpec
from repro.prefetch.registry import prefetcher_display_name
from repro.trace.synth.workloads import DISPLAY_NAMES, workload_names

#: Figure 9 scheme set: Figure 5's four plus the 2NL discontinuity.
SCHEMES_9 = [
    "next-line-on-miss",
    "next-line-tagged",
    "next-4-line",
    "discontinuity",
    "discontinuity-2nl",
]


def specs(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    """Every run Figure 9 reads, declared up front for batch submission."""
    workloads = workload_names() + ["mix"]
    out = [
        RunSpec.create(workload, 4, "none", scale=scale, seed=seed)
        for workload in workloads
    ]
    out += [
        RunSpec.create(workload, 4, scheme, scale=scale, l2_policy="bypass", seed=seed)
        for scheme in SCHEMES_9
        for workload in workloads
    ]
    return out


def run(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """Run Figure 9; returns panels (i) accuracy and (ii) speedup."""
    run_specs(specs(scale, seed), label="fig09")
    workloads = workload_names() + ["mix"]
    col_labels = [DISPLAY_NAMES[w] for w in workloads]

    accuracy_rows = []
    accuracy_values = []
    for scheme in SCHEMES_9:
        row = []
        for workload in workloads:
            result = run_system_cached(
                workload, 4, scheme, scale=scale, l2_policy="bypass", seed=seed
            )
            row.append(100.0 * result.prefetch_accuracy)
        accuracy_rows.append(prefetcher_display_name(scheme))
        accuracy_values.append(row)

    panel_i = ExperimentResult(
        experiment="fig09i",
        title="Prefetch accuracy (4-way CMP)",
        row_labels=accuracy_rows,
        col_labels=col_labels,
        values=accuracy_values,
        unit="% useful/issued",
        fmt=".1f",
        notes=["paper: discont (2NL) ~50% more accurate than discontinuity (4NL)"],
    )

    panel_ii = perf_panel(
        "fig09ii",
        "Speedups including discont (2NL) (4-way CMP, bypass)",
        workloads,
        4,
        "bypass",
        scale,
        seed,
        schemes=SCHEMES_9,
        note="paper: discont (2NL) outperforms next-4-lines",
    )
    return [panel_i, panel_ii]
