"""Figure 2 — L2 instruction miss rates vs. L2 capacity, single core vs CMP.

Paper: "L2 cache instruction miss rates (% per retired instruction) for
single core and 4-way CMP as cache capacity is varied (default is 2MB,
4-way, 64B line size)."

Expected shape (paper §3.1):

- CMP rates substantially above single-core, especially DB and jApp;
- the multiprogrammed Mix has by far the highest rate;
- capacity has a large effect, with 1MB→2MB bigger than 2MB→4MB.
"""

from __future__ import annotations

from typing import List, Optional

from repro.caches.config import DEFAULT_HIERARCHY
from repro.eval.executor import run_specs
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale
from repro.eval.runner import DEFAULT_SEED, run_system_cached
from repro.eval.runspec import RunSpec
from repro.trace.synth.workloads import DISPLAY_NAMES, workload_names
from repro.util.units import MB

#: the paper's capacity sweep.
L2_SIZES_MB = (1, 2, 4)


def specs(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    """Every run Figure 2 reads, declared up front for batch submission."""
    out = []
    for size_mb in L2_SIZES_MB:
        hierarchy = DEFAULT_HIERARCHY.with_l2(capacity_bytes=size_mb * MB)
        for n_cores in (1, 4):
            for workload in workload_names() + ["mix"]:
                if workload == "mix" and n_cores == 1:
                    continue
                out.append(
                    RunSpec.create(
                        workload, n_cores, "none", scale=scale, hierarchy=hierarchy, seed=seed
                    )
                )
    return out


def run(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """Run the Figure 2 sweep; returns one panel (rows = config)."""
    run_specs(specs(scale, seed), label="fig02")
    cmp_workloads = workload_names() + ["mix"]
    col_labels = [DISPLAY_NAMES[w] for w in cmp_workloads]

    rows: List[str] = []
    values: List[List[float]] = []
    for size_mb in L2_SIZES_MB:
        hierarchy = DEFAULT_HIERARCHY.with_l2(capacity_bytes=size_mb * MB)
        for n_cores, tag in ((1, "single core"), (4, "4-way CMP")):
            row = []
            for workload in cmp_workloads:
                if workload == "mix" and n_cores == 1:
                    row.append(float("nan"))
                    continue
                result = run_system_cached(
                    workload, n_cores, "none", scale=scale, hierarchy=hierarchy, seed=seed
                )
                row.append(100.0 * result.l2i_miss_rate)
            rows.append(f"{size_mb}MB {tag}")
            values.append(row)

    return [
        ExperimentResult(
            experiment="fig02",
            title="L2 instruction miss rate vs. capacity (single core / CMP)",
            row_labels=rows,
            col_labels=col_labels,
            values=values,
            unit="% per instruction",
            notes=[
                "paper band, 2MB 4-way CMP: 0.07-0.44%; 1MB CMP: 0.24-0.81%",
                "Mix runs only on the CMP (nan for single core)",
            ],
        )
    ]
