"""Figure 7 — L2 data-miss-rate pollution from instruction prefetching.

Paper: "L2 cache data miss rate; (i) single-core and (ii) 4-way CMP"
(normalized to no prefetch), under the *normal* install policy.

Expected shape (paper §6): the aggressive prefetchers raise the L2 data
miss rate significantly (up to ~1.35× on the CMP) — speculative
instruction lines installed in the unified L2 evict data lines.  This is
the pollution the §7 bypass policy then eliminates.
"""

from __future__ import annotations

from typing import List, Optional

from repro.eval.executor import run_specs
from repro.eval.fig05 import SCHEMES
from repro.eval.fig05 import specs as _fig05_specs
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale
from repro.eval.runner import DEFAULT_SEED, run_system_cached
from repro.eval.runspec import RunSpec
from repro.prefetch.registry import prefetcher_display_name
from repro.trace.synth.workloads import DISPLAY_NAMES, workload_names


def specs(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    """Figure 7 reads exactly the Figure 5 run set (normal L2 install)."""
    return _fig05_specs(scale, seed)


def _panel(
    experiment: str,
    title: str,
    workloads: List[str],
    n_cores: int,
    l2_policy: str,
    scale: Optional[ExperimentScale],
    seed: int,
) -> ExperimentResult:
    col_labels = [DISPLAY_NAMES[w] for w in workloads]
    baselines = {
        workload: run_system_cached(workload, n_cores, "none", scale=scale, seed=seed)
        for workload in workloads
    }
    rows = []
    values = []
    for scheme in SCHEMES:
        row = []
        for workload in workloads:
            result = run_system_cached(
                workload, n_cores, scheme, scale=scale, l2_policy=l2_policy, seed=seed
            )
            base_rate = baselines[workload].l2d_miss_rate
            row.append(result.l2d_miss_rate / base_rate if base_rate > 0 else 1.0)
        rows.append(prefetcher_display_name(scheme))
        values.append(row)
    return ExperimentResult(
        experiment=experiment,
        title=title,
        row_labels=rows,
        col_labels=col_labels,
        values=values,
        unit="normalized to no prefetch",
        notes=["paper: aggressive schemes reach ~1.35X on the CMP"],
    )


def run(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """Run Figure 7; returns panels (i) and (ii)."""
    run_specs(specs(scale, seed), label="fig07")
    base = workload_names()
    return [
        _panel(
            "fig07i",
            "L2$ data miss rate under prefetching (single core, normal install)",
            base,
            1,
            "normal",
            scale,
            seed,
        ),
        _panel(
            "fig07ii",
            "L2$ data miss rate under prefetching (4-way CMP, normal install)",
            base + ["mix"],
            4,
            "normal",
            scale,
            seed,
        ),
    ]
