"""Figure 5 — instruction miss rates under the HW prefetchers.

Paper: "Instruction miss rates for different HW prefetching schemes
(relative to no prefetch); (i) Instruction cache, (ii) L2 cache (single
core) and (iii) L2 cache (4-way CMP)."

Expected shape (paper §6):

- aggressiveness ordering: next-line (on miss) > next-line (tagged) >
  next-4-lines > discontinuity (lower is better — these are residual
  miss-rate fractions);
- the discontinuity + next-4-line combination eliminates the vast majority
  of misses (final miss rate 10-16% of baseline);
- the aggressive schemes are even more effective on the CMP.

These runs use the *normal* L2 install policy — they are the same
configurations Figures 6 and 7 read.
"""

from __future__ import annotations

from typing import List, Optional

from repro.eval.executor import run_specs
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale
from repro.eval.runner import DEFAULT_SEED, run_system_cached
from repro.eval.runspec import RunSpec
from repro.prefetch.registry import prefetcher_display_name
from repro.trace.synth.workloads import DISPLAY_NAMES, workload_names

#: the paper's Figure 5/6/7 scheme set, legend order.
SCHEMES = ["next-line-on-miss", "next-line-tagged", "next-4-line", "discontinuity"]


def specs(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    """Every run Figure 5 reads (the same normal-install runs Figures 6
    and 7 read), declared up front for batch submission."""
    base = workload_names()
    return [
        RunSpec.create(workload, n_cores, scheme, scale=scale, seed=seed)
        for workloads, n_cores in ((base, 1), (base + ["mix"], 4))
        for workload in workloads
        for scheme in ["none"] + SCHEMES
    ]


def _panel(
    experiment: str,
    title: str,
    workloads: List[str],
    n_cores: int,
    metric: str,
    scale: Optional[ExperimentScale],
    seed: int,
    l2_policy: str = "normal",
) -> ExperimentResult:
    col_labels = [DISPLAY_NAMES[w] for w in workloads]
    baselines = {
        workload: run_system_cached(
            workload, n_cores, "none", scale=scale, l2_policy=l2_policy, seed=seed
        )
        for workload in workloads
    }
    rows = []
    values = []
    for scheme in SCHEMES:
        row = []
        for workload in workloads:
            result = run_system_cached(
                workload, n_cores, scheme, scale=scale, l2_policy=l2_policy, seed=seed
            )
            base_rate = getattr(baselines[workload], metric)
            rate = getattr(result, metric)
            row.append(rate / base_rate if base_rate > 0 else 0.0)
        rows.append(prefetcher_display_name(scheme))
        values.append(row)
    return ExperimentResult(
        experiment=experiment,
        title=title,
        row_labels=rows,
        col_labels=col_labels,
        values=values,
        unit="normalized to no prefetch",
        notes=["paper: discontinuity residual miss rate is 10-16% of baseline"],
    )


def run(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """Run Figure 5; returns panels (i)-(iii)."""
    run_specs(specs(scale, seed), label="fig05")
    base = workload_names()
    return [
        _panel(
            "fig05i",
            "I$ miss rate under prefetching (single core)",
            base,
            1,
            "l1i_miss_rate",
            scale,
            seed,
        ),
        _panel(
            "fig05ii",
            "L2$ instruction miss rate under prefetching (single core)",
            base,
            1,
            "l2i_miss_rate",
            scale,
            seed,
        ),
        _panel(
            "fig05iii",
            "L2$ instruction miss rate under prefetching (4-way CMP)",
            base + ["mix"],
            4,
            "l2i_miss_rate",
            scale,
            seed,
        ),
    ]
