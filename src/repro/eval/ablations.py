"""Ablation studies for the design choices the paper calls out.

These go beyond the paper's figures to isolate individual mechanisms:

- ``filtering`` — the §4.1 prefetch-queue filters on/off.  The paper
  reports that after filtering, up to 90% of prefetch tag probes miss
  (i.e. the probe results in an issue) and that filtering's performance
  cost is "extremely minor"; without filtering, the queue clogs with
  duplicates and wastes tag probes.
- ``eviction_counter`` — the discontinuity table's 2-bit counter vs.
  always-replace (counter disabled), isolating the thrash protection.
- ``prefetch_ahead`` — the prefetch-ahead distance sweep behind the
  paper's "4 lines is a good balance" statement (§4).
- ``queue_discipline`` — the LIFO queue vs. FIFO ("managed on a last-in,
  first-out basis to de-emphasize the older prefetches").
"""

from __future__ import annotations

from typing import List, Optional

from repro.eval.executor import run_specs
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale
from repro.eval.runner import DEFAULT_SEED, run_system_cached
from repro.eval.runspec import RunSpec
from repro.trace.synth.workloads import DISPLAY_NAMES, workload_names


def _baseline_specs(scale: Optional[ExperimentScale], seed: int) -> List[RunSpec]:
    """The shared 4-way-CMP no-prefetch baselines most ablations divide by."""
    return [
        RunSpec.create(workload, 4, "none", scale=scale, seed=seed)
        for workload in workload_names()
    ]


def specs_filtering(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    return _baseline_specs(scale, seed) + [
        RunSpec.create(
            workload,
            4,
            "discontinuity",
            scale=scale,
            l2_policy="bypass",
            queue_filtering=filtering,
            seed=seed,
        )
        for filtering in (True, False)
        for workload in workload_names()
    ]


def run_filtering(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """Queue filtering on vs. off (discontinuity prefetcher, 4-way CMP)."""
    run_specs(specs_filtering(scale, seed), label="ablation-filtering")
    workloads = workload_names()
    col_labels = [DISPLAY_NAMES[w] for w in workloads]
    speedups = []
    probe_waste = []
    for filtering in (True, False):
        speedup_row = []
        waste_row = []
        for workload in workloads:
            base = run_system_cached(workload, 4, "none", scale=scale, seed=seed)
            result = run_system_cached(
                workload,
                4,
                "discontinuity",
                scale=scale,
                l2_policy="bypass",
                queue_filtering=filtering,
                seed=seed,
            )
            speedup_row.append(result.aggregate_ipc / base.aggregate_ipc)
            probes = sum(
                core.prefetch.probe_found_present + core.prefetch.issued
                for core in result.cores
            )
            found = sum(core.prefetch.probe_found_present for core in result.cores)
            waste_row.append(100.0 * found / probes if probes else 0.0)
        speedups.append(speedup_row)
        probe_waste.append(waste_row)
    rows = ["Filtering on", "Filtering off"]
    return [
        ExperimentResult(
            experiment="ablation-filtering-speedup",
            title="Discontinuity speedup with/without queue filtering (CMP)",
            row_labels=rows,
            col_labels=col_labels,
            values=speedups,
            unit="speedup, X",
        ),
        ExperimentResult(
            experiment="ablation-filtering-probes",
            title="Prefetch tag probes finding the line already present",
            row_labels=rows,
            col_labels=col_labels,
            values=probe_waste,
            unit="% of probes",
            fmt=".1f",
            notes=["paper: after filtering, for up to 90% of probes the line is absent"],
        ),
    ]


def specs_eviction_counter(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    return [
        RunSpec.create(
            workload,
            4,
            "discontinuity",
            scale=scale,
            l2_policy="bypass",
            prefetcher_overrides={"table_entries": 256, "counter_max": counter_max},
            seed=seed,
        )
        for counter_max in (3, 0)
        for workload in workload_names()
    ]


def run_eviction_counter(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """2-bit eviction counter vs. always-replace, small table (CMP).

    The counter matters most when the table is contended, so this runs the
    256-entry configuration.
    """
    run_specs(specs_eviction_counter(scale, seed), label="ablation-eviction-counter")
    workloads = workload_names()
    col_labels = [DISPLAY_NAMES[w] for w in workloads]
    values = []
    for counter_max in (3, 0):
        row = []
        for workload in workloads:
            result = run_system_cached(
                workload,
                4,
                "discontinuity",
                scale=scale,
                l2_policy="bypass",
                prefetcher_overrides={"table_entries": 256, "counter_max": counter_max},
                seed=seed,
            )
            row.append(100.0 * result.l1i_coverage)
        values.append(row)
    return [
        ExperimentResult(
            experiment="ablation-eviction-counter",
            title="L1 coverage, 256-entry table: eviction counter vs always-replace",
            row_labels=["2-bit counter", "always replace"],
            col_labels=col_labels,
            values=values,
            unit="% coverage",
            fmt=".1f",
        )
    ]


AHEAD_DISTANCES = (1, 2, 3, 4, 6, 8)


def specs_prefetch_ahead(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    return _baseline_specs(scale, seed) + [
        RunSpec.create(
            workload,
            4,
            "discontinuity",
            scale=scale,
            l2_policy="bypass",
            prefetcher_overrides={"prefetch_ahead": distance},
            seed=seed,
        )
        for distance in AHEAD_DISTANCES
        for workload in workload_names()
    ]


def run_prefetch_ahead(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """Prefetch-ahead distance sweep for the discontinuity prefetcher (CMP)."""
    run_specs(specs_prefetch_ahead(scale, seed), label="ablation-prefetch-ahead")
    workloads = workload_names()
    col_labels = [DISPLAY_NAMES[w] for w in workloads]
    distances = AHEAD_DISTANCES
    speedups = []
    accuracies = []
    for distance in distances:
        speedup_row = []
        accuracy_row = []
        for workload in workloads:
            base = run_system_cached(workload, 4, "none", scale=scale, seed=seed)
            result = run_system_cached(
                workload,
                4,
                "discontinuity",
                scale=scale,
                l2_policy="bypass",
                prefetcher_overrides={"prefetch_ahead": distance},
                seed=seed,
            )
            speedup_row.append(result.aggregate_ipc / base.aggregate_ipc)
            accuracy_row.append(100.0 * result.prefetch_accuracy)
        speedups.append(speedup_row)
        accuracies.append(accuracy_row)
    rows = [f"ahead={distance}" for distance in distances]
    return [
        ExperimentResult(
            experiment="ablation-prefetch-ahead-speedup",
            title="Discontinuity speedup vs prefetch-ahead distance (CMP, bypass)",
            row_labels=rows,
            col_labels=col_labels,
            values=speedups,
            unit="speedup, X",
            notes=["paper: 4 lines balances timeliness against accuracy/bandwidth"],
        ),
        ExperimentResult(
            experiment="ablation-prefetch-ahead-accuracy",
            title="Discontinuity accuracy vs prefetch-ahead distance (CMP, bypass)",
            row_labels=rows,
            col_labels=col_labels,
            values=accuracies,
            unit="% useful/issued",
            fmt=".1f",
        ),
    ]


def specs_probe_ahead(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    return _baseline_specs(scale, seed) + [
        RunSpec.create(workload, 4, scheme, scale=scale, l2_policy="bypass", seed=seed)
        for scheme in ("discontinuity", "discontinuity-noprobeahead")
        for workload in workload_names()
    ]


def run_probe_ahead(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """Probe-ahead vs probe-current-line discontinuity prediction.

    Probing only the current line is the classic target-prefetcher timing
    [1]; the paper's prefetcher probes the whole prefetch-ahead window so
    discontinuity prefetches launch early enough to cover L2 misses.  The
    difference shows up as *late* useful prefetches (fills still in flight
    when the demand arrives).
    """
    run_specs(specs_probe_ahead(scale, seed), label="ablation-probe-ahead")
    workloads = workload_names()
    col_labels = [DISPLAY_NAMES[w] for w in workloads]
    speedups = []
    late_fractions = []
    variants = [("discontinuity", "Probe-ahead (paper)"), ("discontinuity-noprobeahead", "Probe current line")]
    for scheme, _ in variants:
        speedup_row = []
        late_row = []
        for workload in workloads:
            base = run_system_cached(workload, 4, "none", scale=scale, seed=seed)
            result = run_system_cached(
                workload, 4, scheme, scale=scale, l2_policy="bypass", seed=seed
            )
            speedup_row.append(result.aggregate_ipc / base.aggregate_ipc)
            useful = sum(core.prefetch.useful for core in result.cores)
            late = sum(core.prefetch.useful_late for core in result.cores)
            late_row.append(100.0 * late / useful if useful else 0.0)
        speedups.append(speedup_row)
        late_fractions.append(late_row)
    rows = [label for _, label in variants]
    return [
        ExperimentResult(
            experiment="ablation-probe-ahead-speedup",
            title="Discontinuity speedup: probe-ahead vs probe-current (CMP)",
            row_labels=rows,
            col_labels=col_labels,
            values=speedups,
            unit="speedup, X",
        ),
        ExperimentResult(
            experiment="ablation-probe-ahead-late",
            title="Late useful prefetches: probe-ahead vs probe-current (CMP)",
            row_labels=rows,
            col_labels=col_labels,
            values=late_fractions,
            unit="% of useful prefetches arriving late",
            fmt=".1f",
        ),
    ]


#: §4 equal-storage comparison: (label, scheme, overrides).
TABLE_DESIGN_VARIANTS = [
    ("Discontinuity 4096x1", "discontinuity", {"table_entries": 4096}),
    ("Markov 2048x2", "markov", {"table_entries": 2048, "targets_per_entry": 2}),
    ("Markov 4096x2 (2x storage)", "markov", {"table_entries": 4096, "targets_per_entry": 2}),
]


def specs_single_vs_multi_target(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    return _baseline_specs(scale, seed) + [
        RunSpec.create(
            workload,
            4,
            scheme,
            scale=scale,
            l2_policy="bypass",
            prefetcher_overrides=overrides,
            seed=seed,
        )
        for _, scheme, overrides in TABLE_DESIGN_VARIANTS
        for workload in workload_names()
    ]


def run_single_vs_multi_target(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """Single-target discontinuity table vs multi-target Markov predictor.

    The paper (§4) justifies one target per entry by observing that most
    discontinuities have a single dominant target, making the table far
    smaller than multi-target predictors [8].  This ablation compares the
    discontinuity table against a 2-target Markov predictor at *equal
    storage*: N single-target entries vs N/2 two-target entries.
    """
    run_specs(specs_single_vs_multi_target(scale, seed), label="ablation-table-design")
    workloads = workload_names()
    col_labels = [DISPLAY_NAMES[w] for w in workloads]
    variants = TABLE_DESIGN_VARIANTS
    coverage = []
    speedups = []
    for _, scheme, overrides in variants:
        coverage_row = []
        speedup_row = []
        for workload in workloads:
            base = run_system_cached(workload, 4, "none", scale=scale, seed=seed)
            result = run_system_cached(
                workload,
                4,
                scheme,
                scale=scale,
                l2_policy="bypass",
                prefetcher_overrides=overrides,
                seed=seed,
            )
            coverage_row.append(100.0 * result.l1i_coverage)
            speedup_row.append(result.aggregate_ipc / base.aggregate_ipc)
        coverage.append(coverage_row)
        speedups.append(speedup_row)
    rows = [label for label, _, _ in variants]
    return [
        ExperimentResult(
            experiment="ablation-table-design-coverage",
            title="L1 coverage: single-target vs multi-target tables (CMP)",
            row_labels=rows,
            col_labels=col_labels,
            values=coverage,
            unit="% coverage",
            fmt=".1f",
            notes=["paper §4: one target per entry suffices at half the storage"],
        ),
        ExperimentResult(
            experiment="ablation-table-design-speedup",
            title="Speedup: single-target vs multi-target tables (CMP)",
            row_labels=rows,
            col_labels=col_labels,
            values=speedups,
            unit="speedup, X",
        ),
    ]


def specs_useless_hint_filter(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    return _baseline_specs(scale, seed) + [
        RunSpec.create(
            workload,
            4,
            "discontinuity",
            scale=scale,
            l2_policy="bypass",
            useless_hint_filter=hint_filter,
            seed=seed,
        )
        for hint_filter in (False, True)
        for workload in workload_names()
    ]


def run_useless_hint_filter(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """The §2.4 used-bit re-prefetch filter [Luk & Mowry] on/off.

    With the filter, prefetches for L2 lines that previously proved
    useless in the L1I are dropped, trading a little coverage for
    bandwidth and accuracy.
    """
    run_specs(specs_useless_hint_filter(scale, seed), label="ablation-useless-hint")
    workloads = workload_names()
    col_labels = [DISPLAY_NAMES[w] for w in workloads]
    accuracy = []
    speedups = []
    for hint_filter in (False, True):
        accuracy_row = []
        speedup_row = []
        for workload in workloads:
            base = run_system_cached(workload, 4, "none", scale=scale, seed=seed)
            result = run_system_cached(
                workload,
                4,
                "discontinuity",
                scale=scale,
                l2_policy="bypass",
                useless_hint_filter=hint_filter,
                seed=seed,
            )
            accuracy_row.append(100.0 * result.prefetch_accuracy)
            speedup_row.append(result.aggregate_ipc / base.aggregate_ipc)
        accuracy.append(accuracy_row)
        speedups.append(speedup_row)
    rows = ["No re-prefetch filter", "Used-bit filter (§2.4)"]
    return [
        ExperimentResult(
            experiment="ablation-useless-hint-accuracy",
            title="Prefetch accuracy with the used-bit re-prefetch filter (CMP)",
            row_labels=rows,
            col_labels=col_labels,
            values=accuracy,
            unit="% useful/issued",
            fmt=".1f",
        ),
        ExperimentResult(
            experiment="ablation-useless-hint-speedup",
            title="Speedup with the used-bit re-prefetch filter (CMP)",
            row_labels=rows,
            col_labels=col_labels,
            values=speedups,
            unit="speedup, X",
        ),
    ]


def specs_inclusion(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    out = []
    for inclusive in (False, True):
        for workload in workload_names():
            out.append(
                RunSpec.create(
                    workload, 4, "none", scale=scale, l2_inclusive=inclusive, seed=seed
                )
            )
            out.append(
                RunSpec.create(
                    workload,
                    4,
                    "discontinuity",
                    scale=scale,
                    l2_policy="bypass",
                    l2_inclusive=inclusive,
                    seed=seed,
                )
            )
    return out


def run_inclusion(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """Inclusive vs non-inclusive shared L2 (substrate sensitivity).

    The paper does not state its L2's inclusion policy; this ablation
    bounds how much the choice matters for the headline result.  Inclusive
    L2s back-invalidate L1 lines on eviction, so instruction-prefetch
    pollution of the L2 can reach into the L1s — slightly amplifying the
    pollution effect the bypass policy removes.
    """
    run_specs(specs_inclusion(scale, seed), label="ablation-inclusion")
    workloads = workload_names()
    col_labels = [DISPLAY_NAMES[w] for w in workloads]
    speedups = []
    l1i_rates = []
    for inclusive in (False, True):
        speedup_row = []
        l1i_row = []
        for workload in workloads:
            base = run_system_cached(
                workload, 4, "none", scale=scale, l2_inclusive=inclusive, seed=seed
            )
            result = run_system_cached(
                workload,
                4,
                "discontinuity",
                scale=scale,
                l2_policy="bypass",
                l2_inclusive=inclusive,
                seed=seed,
            )
            speedup_row.append(result.aggregate_ipc / base.aggregate_ipc)
            l1i_row.append(100.0 * base.l1i_miss_rate)
        speedups.append(speedup_row)
        l1i_rates.append(l1i_row)
    rows = ["Non-inclusive (default)", "Inclusive"]
    return [
        ExperimentResult(
            experiment="ablation-inclusion-speedup",
            title="Discontinuity speedup: non-inclusive vs inclusive L2 (CMP)",
            row_labels=rows,
            col_labels=col_labels,
            values=speedups,
            unit="speedup, X",
        ),
        ExperimentResult(
            experiment="ablation-inclusion-l1i",
            title="Baseline L1I miss rate: non-inclusive vs inclusive L2 (CMP)",
            row_labels=rows,
            col_labels=col_labels,
            values=l1i_rates,
            unit="% per instruction",
        ),
    ]


REPLACEMENT_POLICIES = ("lru", "plru", "fifo", "random")


def specs_replacement(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    out = []
    for policy in REPLACEMENT_POLICIES:
        for workload in workload_names():
            out.append(
                RunSpec.create(
                    workload, 4, "none", scale=scale,
                    l1_replacement=policy, l2_replacement=policy, seed=seed,
                )
            )
            out.append(
                RunSpec.create(
                    workload, 4, "discontinuity", scale=scale, l2_policy="bypass",
                    l1_replacement=policy, l2_replacement=policy, seed=seed,
                )
            )
    return out


def run_replacement(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """Cache replacement policy sensitivity (substrate check).

    The paper's simulator uses LRU; real L1s often implement tree-PLRU and
    some designs use random.  This ablation verifies the headline result
    is not an artifact of the replacement policy.
    """
    run_specs(specs_replacement(scale, seed), label="ablation-replacement")
    workloads = workload_names()
    col_labels = [DISPLAY_NAMES[w] for w in workloads]
    policies = REPLACEMENT_POLICIES
    l1i_rates = []
    speedups = []
    for policy in policies:
        l1i_row = []
        speedup_row = []
        for workload in workloads:
            base = run_system_cached(
                workload, 4, "none", scale=scale,
                l1_replacement=policy, l2_replacement=policy, seed=seed,
            )
            result = run_system_cached(
                workload, 4, "discontinuity", scale=scale, l2_policy="bypass",
                l1_replacement=policy, l2_replacement=policy, seed=seed,
            )
            l1i_row.append(100.0 * base.l1i_miss_rate)
            speedup_row.append(result.aggregate_ipc / base.aggregate_ipc)
        l1i_rates.append(l1i_row)
        speedups.append(speedup_row)
    rows = [policy.upper() for policy in policies]
    return [
        ExperimentResult(
            experiment="ablation-replacement-l1i",
            title="Baseline L1I miss rate by replacement policy (CMP)",
            row_labels=rows,
            col_labels=col_labels,
            values=l1i_rates,
            unit="% per instruction",
        ),
        ExperimentResult(
            experiment="ablation-replacement-speedup",
            title="Discontinuity speedup by replacement policy (CMP)",
            row_labels=rows,
            col_labels=col_labels,
            values=speedups,
            unit="speedup, X",
        ),
    ]


def specs_queue_discipline(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    return _baseline_specs(scale, seed) + [
        RunSpec.create(
            workload,
            4,
            "discontinuity",
            scale=scale,
            l2_policy="bypass",
            queue_lifo=lifo,
            seed=seed,
        )
        for lifo in (True, False)
        for workload in workload_names()
    ]


def run_queue_discipline(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """LIFO vs FIFO prefetch queue (discontinuity, 4-way CMP, bypass)."""
    run_specs(specs_queue_discipline(scale, seed), label="ablation-queue-discipline")
    workloads = workload_names()
    col_labels = [DISPLAY_NAMES[w] for w in workloads]
    values = []
    for lifo in (True, False):
        row = []
        for workload in workloads:
            base = run_system_cached(workload, 4, "none", scale=scale, seed=seed)
            result = run_system_cached(
                workload,
                4,
                "discontinuity",
                scale=scale,
                l2_policy="bypass",
                queue_lifo=lifo,
                seed=seed,
            )
            row.append(result.aggregate_ipc / base.aggregate_ipc)
        values.append(row)
    return [
        ExperimentResult(
            experiment="ablation-queue-discipline",
            title="Discontinuity speedup: LIFO vs FIFO prefetch queue (CMP)",
            row_labels=["LIFO (paper)", "FIFO"],
            col_labels=col_labels,
            values=values,
            unit="speedup, X",
        )
    ]
