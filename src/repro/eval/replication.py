"""Multi-seed replication: are the headline results seed-robust?

Every experiment in this repo is deterministic in its seed; this module
reruns a configuration across several seeds and reports mean ± sample
standard deviation, so claims like "discontinuity gives 1.46× on DB" can
be qualified with their sensitivity to the synthetic-trace randomness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.eval.executor import run_specs
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale
from repro.eval.runner import run_system_cached
from repro.eval.runspec import RunSpec
from repro.trace.synth.workloads import DISPLAY_NAMES, workload_names

#: default replication seeds (arbitrary, fixed for reproducibility).
DEFAULT_SEEDS = (1337, 2024, 31415, 27182, 16180)

#: the headline schemes the replication check replicates.
REPLICATION_SCHEMES = ("next-4-line", "discontinuity")


@dataclass(frozen=True)
class Replicate:
    """Mean and sample standard deviation of one metric across seeds."""

    mean: float
    std: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f} (n={self.n})"


def summarize(values: Sequence[float]) -> Replicate:
    """Mean ± sample standard deviation of *values*."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Replicate(mean, 0.0, 1)
    variance = sum((value - mean) ** 2 for value in values) / (n - 1)
    return Replicate(mean, math.sqrt(variance), n)


def replicate_metric(
    metric: Callable[[int], float],
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> Replicate:
    """Evaluate ``metric(seed)`` across *seeds* and summarize."""
    return summarize([metric(seed) for seed in seeds])


def replicate_speedup(
    workload: str,
    n_cores: int,
    prefetcher: str,
    scale: Optional[ExperimentScale] = None,
    l2_policy: str = "bypass",
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> Replicate:
    """Speedup of *prefetcher* over no-prefetch, replicated across seeds."""

    def one(seed: int) -> float:
        base = run_system_cached(workload, n_cores, "none", scale=scale, seed=seed)
        result = run_system_cached(
            workload, n_cores, prefetcher, scale=scale, l2_policy=l2_policy, seed=seed
        )
        return result.aggregate_ipc / base.aggregate_ipc

    return replicate_metric(one, seeds)


def specs_replication_check(
    scale: Optional[ExperimentScale] = None,
    seed: int = DEFAULT_SEEDS[0],
    seeds: Sequence[int] = DEFAULT_SEEDS[:3],
) -> List[RunSpec]:
    """Every run the replication check reads (all seeds, all schemes)."""
    del seed
    out = []
    for one_seed in seeds:
        for workload in workload_names():
            out.append(RunSpec.create(workload, 4, "none", scale=scale, seed=one_seed))
            for scheme in REPLICATION_SCHEMES:
                out.append(
                    RunSpec.create(
                        workload, 4, scheme, scale=scale, l2_policy="bypass", seed=one_seed
                    )
                )
    return out


def run_replication_check(
    scale: Optional[ExperimentScale] = None,
    seed: int = DEFAULT_SEEDS[0],
    seeds: Sequence[int] = DEFAULT_SEEDS[:3],
) -> List[ExperimentResult]:
    """Registry driver: the headline CMP speedups with seed error bars.

    (The ``seed`` argument is accepted for registry-interface uniformity;
    the replication always spans ``seeds``.)
    """
    run_specs(specs_replication_check(scale, seed, seeds), label="replication-check")
    del seed
    workloads = workload_names()
    col_labels = [DISPLAY_NAMES[w] for w in workloads]
    means = []
    stds = []
    for scheme in REPLICATION_SCHEMES:
        mean_row = []
        std_row = []
        for workload in workloads:
            replicate = replicate_speedup(
                workload, 4, scheme, scale=scale, seeds=seeds
            )
            mean_row.append(replicate.mean)
            std_row.append(replicate.std)
        means.append(mean_row)
        stds.append(std_row)
    return [
        ExperimentResult(
            experiment="replication-mean",
            title=f"CMP speedup, mean over {len(seeds)} seeds (bypass)",
            row_labels=["Next-4-lines (tagged)", "Discontinuity"],
            col_labels=col_labels,
            values=means,
            unit="speedup, X",
        ),
        ExperimentResult(
            experiment="replication-std",
            title=f"CMP speedup, sample std over {len(seeds)} seeds",
            row_labels=["Next-4-lines (tagged)", "Discontinuity"],
            col_labels=col_labels,
            values=stds,
            unit="speedup, X",
        ),
    ]
