"""Multi-seed replication statistics: are the headline results seed-robust?

Every experiment in this repo is deterministic in its seed; these helpers
rerun a configuration across several seeds and report mean ± sample
standard deviation, so claims like "discontinuity gives 1.46× on DB" can
be qualified with their sensitivity to the synthetic-trace randomness.
The ``replication-check`` catalog entry
(:mod:`repro.eval.catalog.replication`) builds its panels on top of
:func:`summarize`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.eval.profiles import ExperimentScale
from repro.eval.runner import run_system_cached

#: default replication seeds (arbitrary, fixed for reproducibility).
DEFAULT_SEEDS = (1337, 2024, 31415, 27182, 16180)

#: the headline schemes the replication check replicates.
REPLICATION_SCHEMES = ("next-4-line", "discontinuity")


@dataclass(frozen=True)
class Replicate:
    """Mean and sample standard deviation of one metric across seeds."""

    mean: float
    std: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f} (n={self.n})"


def summarize(values: Sequence[float]) -> Replicate:
    """Mean ± sample standard deviation of *values*."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Replicate(mean, 0.0, 1)
    variance = sum((value - mean) ** 2 for value in values) / (n - 1)
    return Replicate(mean, math.sqrt(variance), n)


def replicate_metric(
    metric: Callable[[int], float],
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> Replicate:
    """Evaluate ``metric(seed)`` across *seeds* and summarize."""
    return summarize([metric(seed) for seed in seeds])


def replicate_speedup(
    workload: str,
    n_cores: int,
    prefetcher: str,
    scale: Optional[ExperimentScale] = None,
    l2_policy: str = "bypass",
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> Replicate:
    """Speedup of *prefetcher* over no-prefetch, replicated across seeds."""

    def one(seed: int) -> float:
        base = run_system_cached(workload, n_cores, "none", scale=scale, seed=seed)
        result = run_system_cached(
            workload, n_cores, prefetcher, scale=scale, l2_policy=l2_policy, seed=seed
        )
        return result.aggregate_ipc / base.aggregate_ipc

    return replicate_metric(one, seeds)
