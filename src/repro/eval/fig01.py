"""Figure 1 — L1 instruction cache miss rates vs. cache geometry.

Paper: "Instruction cache miss rates (% per retired instruction) as cache
associativity, line size and capacity are varied (default is 32KB, 4-way,
64B line size)."

Expected shape (paper §3.1):

- default-config miss rates between ~1.3% and ~3.2%, jApp highest;
- increasing line size is highly effective;
- capacity helps strongly; associativity helps, with little benefit
  beyond 4-way.

Each configuration varies exactly one dimension of the per-core L1I; the
data applies to both the single-core processor and the CMP (private L1Is),
so we run single-core systems.
"""

from __future__ import annotations

from typing import List, Optional

from repro.caches.config import DEFAULT_HIERARCHY
from repro.eval.executor import run_specs
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale
from repro.eval.runner import DEFAULT_SEED, run_system_cached
from repro.eval.runspec import RunSpec
from repro.trace.synth.workloads import DISPLAY_NAMES, workload_names
from repro.util.units import KB

#: the paper's sweep points: (label, L1I config overrides).
CONFIGS = [
    ("Default", {}),
    ("Direct-mapped", {"associativity": 1}),
    ("2-way", {"associativity": 2}),
    ("8-way", {"associativity": 8}),
    ("32B line size", {"line_size": 32}),
    ("128B line size", {"line_size": 128}),
    ("256B line size", {"line_size": 256}),
    ("16KB", {"capacity_bytes": 16 * KB}),
    ("64KB", {"capacity_bytes": 64 * KB}),
    ("128KB", {"capacity_bytes": 128 * KB}),
]


def specs(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    """Every run Figure 1 reads, declared up front for batch submission."""
    return [
        RunSpec.create(
            workload,
            1,
            "none",
            scale=scale,
            hierarchy=DEFAULT_HIERARCHY.with_l1i(**overrides) if overrides else DEFAULT_HIERARCHY,
            seed=seed,
        )
        for _, overrides in CONFIGS
        for workload in workload_names()
    ]


def run(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """Run the Figure 1 sweep; returns one panel."""
    run_specs(specs(scale, seed), label="fig01")
    workloads = workload_names()
    rows = []
    values = []
    for label, overrides in CONFIGS:
        hierarchy = DEFAULT_HIERARCHY.with_l1i(**overrides) if overrides else DEFAULT_HIERARCHY
        row = []
        for workload in workloads:
            result = run_system_cached(
                workload, 1, "none", scale=scale, hierarchy=hierarchy, seed=seed
            )
            row.append(100.0 * result.l1i_miss_rate)
        rows.append(label)
        values.append(row)
    return [
        ExperimentResult(
            experiment="fig01",
            title="I$ miss rate vs. associativity / line size / capacity",
            row_labels=rows,
            col_labels=[DISPLAY_NAMES[w] for w in workloads],
            values=values,
            unit="% per instruction",
            notes=[
                "paper band for the default config: 1.32-3.16%, jApp highest",
                "default = 32KB, 4-way, 64B lines",
            ],
        )
    ]
