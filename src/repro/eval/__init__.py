"""Experiment harness: one driver per paper figure.

Each ``figNN`` module exposes a ``run(scale=...)`` function returning a
structured result object with a ``format_table()`` method that prints the
same rows/series the paper's figure shows.  Beyond the figures there are
ablations (:mod:`repro.eval.ablations`), comparisons against the §2 survey
of alternative prefetching styles (:mod:`repro.eval.comparisons`) and
multi-seed replication (:mod:`repro.eval.replication`).
``repro-experiment`` (see :mod:`repro.eval.cli`) is the command-line front
end; :mod:`repro.eval.report` exports results as JSON/Markdown.

Experiment scale is controlled by :mod:`repro.eval.profiles`: the paper
warms 50M and measures 100M instructions of real traces, which pure-Python
simulation cannot afford per configuration; the ``default`` profile keeps
the paper's cache geometry but simulates fewer (still representative)
instructions.  Set ``REPRO_PROFILE=full`` for longer runs or
``REPRO_PROFILE=smoke`` for CI-speed runs.

Sweep execution (see ``docs/performance.md``): drivers declare their runs
as :class:`~repro.eval.runspec.RunSpec` lists and batch-submit them via
:func:`~repro.eval.executor.run_specs`, which fans out across worker
processes (``REPRO_JOBS``) and persists every result in an on-disk cache
(``REPRO_CACHE_DIR``, default ``.repro-cache/``).
"""

from repro.eval.executor import (
    SweepError,
    SweepReport,
    execute_spec,
    resolve_jobs,
    run_specs,
    run_specs_report,
)
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale, get_scale
from repro.eval.runner import (
    clear_result_cache,
    clear_trace_cache,
    get_traces,
    run_system,
    run_system_cached,
)
from repro.eval.runspec import RunSpec, dedupe_specs

__all__ = [
    "ExperimentScale",
    "get_scale",
    "run_system",
    "run_system_cached",
    "get_traces",
    "clear_trace_cache",
    "clear_result_cache",
    "RunSpec",
    "dedupe_specs",
    "run_specs",
    "run_specs_report",
    "SweepError",
    "SweepReport",
    "execute_spec",
    "resolve_jobs",
    "ExperimentResult",
]
