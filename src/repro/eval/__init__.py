"""Experiment harness: a declarative catalog plus one generic runner.

Every experiment — the ten paper figures, the design ablations, the §2
style comparisons and the multi-seed replication check — is *declared*
once as an :class:`~repro.eval.experiment.Experiment` in a
:mod:`repro.eval.catalog` module: an axis grid expanding to
:class:`~repro.eval.runspec.RunSpec` runs, panel definitions extracting
metrics from the completed runs, and the paper-expectation bands the
result must land in.  The single generic
:func:`~repro.eval.experiment.run_experiment` pathway batch-submits the
grid, builds the panels and evaluates the expectations into verdicts;
:mod:`repro.eval.registry` is the name → declaration lookup.
``repro-experiment`` (see :mod:`repro.eval.cli`) is the command-line front
end; :mod:`repro.eval.report` exports results as JSON/Markdown.

Experiment scale is controlled by :mod:`repro.eval.profiles`: the paper
warms 50M and measures 100M instructions of real traces, which pure-Python
simulation cannot afford per configuration; the ``default`` profile keeps
the paper's cache geometry but simulates fewer (still representative)
instructions.  Set ``REPRO_PROFILE=full`` for longer runs or
``REPRO_PROFILE=smoke`` for CI-speed runs.

Sweep execution (see ``docs/performance.md``): drivers declare their runs
as :class:`~repro.eval.runspec.RunSpec` lists and batch-submit them via
:func:`~repro.eval.executor.run_specs`, which fans out across worker
processes (``REPRO_JOBS``) and persists every result in an on-disk cache
(``REPRO_CACHE_DIR``, default ``.repro-cache/``).
"""

from repro.eval.executor import (
    SweepError,
    SweepReport,
    execute_spec,
    resolve_jobs,
    run_specs,
    run_specs_report,
)
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale, get_scale
from repro.eval.runner import (
    clear_result_cache,
    clear_trace_cache,
    get_traces,
    run_system,
    run_system_cached,
)
from repro.eval.runspec import RunSpec, dedupe_specs

__all__ = [
    "ExperimentScale",
    "get_scale",
    "run_system",
    "run_system_cached",
    "get_traces",
    "clear_trace_cache",
    "clear_result_cache",
    "RunSpec",
    "dedupe_specs",
    "run_specs",
    "run_specs_report",
    "SweepError",
    "SweepReport",
    "execute_spec",
    "resolve_jobs",
    "ExperimentResult",
]
