"""Declarative experiment catalog: experiments as data, not drivers.

An :class:`Experiment` fully describes one paper figure, ablation or
comparison: an axis grid that expands to the :class:`RunSpec` set the
experiment reads, per-panel metric extractors over the completed
:class:`SystemResult` runs, and the paper's expected bands as declarative
:class:`Expectation` objects.  One generic :func:`run_experiment` executes
any of them: it batch-submits the grid through the executor/diskcache/
trace-store stack, assembles :class:`ExperimentResult` panels, and
evaluates the expectations into structured :class:`Verdict` objects.

The catalog of concrete declarations lives in :mod:`repro.eval.catalog`;
:mod:`repro.eval.registry` exposes it by name.  Lint rule R5 statically
checks that every declaration is complete and registered exactly once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale, get_scale
from repro.eval.runspec import DEFAULT_SEED, RunSpec, dedupe_specs

#: ordering used to gate expectations on the running scale; scales not in
#: this table (ad-hoc test scales) rank below everything, so qualitative
#: bands are skipped rather than spuriously failed on tiny runs.
SCALE_RANK: Dict[str, int] = {"smoke": 0, "default": 1, "full": 2}


def scale_rank(name: str) -> int:
    return SCALE_RANK.get(name, -1)


@dataclass(frozen=True)
class ExperimentContext:
    """Resolved run parameters one experiment execution is keyed by."""

    scale: ExperimentScale
    seed: int = DEFAULT_SEED
    #: replication experiments span these seeds; empty for everything else.
    seeds: Tuple[int, ...] = ()

    def spec(
        self, workload: str, n_cores: int, prefetcher: str = "none", **kwargs: Any
    ) -> RunSpec:
        """Build a RunSpec with this context's scale/seed defaults."""
        kwargs.setdefault("scale", self.scale)
        kwargs.setdefault("seed", self.seed)
        return RunSpec.create(workload, n_cores, prefetcher, **kwargs)


#: a grid axis: (name, values) where values is a sequence or a callable
#: evaluated against the context (e.g. replication seeds).
AxisValues = Union[Sequence[Any], Callable[[ExperimentContext], Sequence[Any]]]

#: a grid point builder: maps the context plus one value per axis to the
#: spec(s) that point contributes (None skips the point).
GridBuilder = Callable[..., Union[RunSpec, Sequence[RunSpec], None]]


@dataclass(frozen=True)
class Grid:
    """Cartesian axis grid expanded through a per-point RunSpec builder.

    Experiments that read the same runs (Figures 5, 6 and 7) share one
    ``Grid`` instance; the registry's cross-experiment dedupe then
    simulates the overlap once.
    """

    axes: Tuple[Tuple[str, AxisValues], ...]
    build: GridBuilder

    def specs(self, ctx: ExperimentContext) -> List[RunSpec]:
        """Expand the grid to the deduplicated RunSpec list it declares."""
        names = [name for name, _ in self.axes]
        values = [
            list(axis(ctx)) if callable(axis) else list(axis)
            for _, axis in self.axes
        ]
        out: List[RunSpec] = []
        for point in product(*values):
            built = self.build(ctx, **dict(zip(names, point)))
            if built is None:
                continue
            if isinstance(built, RunSpec):
                out.append(built)
            else:
                out.extend(built)
        return dedupe_specs(out)


class Runs:
    """Completed results of one experiment's sweep, keyed ergonomically.

    Panel extractors never simulate: every lookup must hit a spec the
    experiment's grid declared, so a missing key is a declaration bug and
    raises ``KeyError`` naming the spec.
    """

    def __init__(
        self, ctx: ExperimentContext, results: Mapping[RunSpec, Any]
    ) -> None:
        self.ctx = ctx
        self._results = dict(results)

    def __len__(self) -> int:
        return len(self._results)

    def result(
        self, workload: str, n_cores: int, prefetcher: str = "none", **kwargs: Any
    ) -> Any:
        spec = self.ctx.spec(workload, n_cores, prefetcher, **kwargs)
        try:
            return self._results[spec]
        except KeyError:
            raise KeyError(
                f"run {spec.describe()} is not part of this experiment's grid"
            ) from None

    def speedup(
        self,
        workload: str,
        n_cores: int,
        prefetcher: str,
        base: Optional[Dict[str, Any]] = None,
        **kwargs: Any,
    ) -> float:
        """IPC of the configured run over the matching no-prefetch baseline."""
        base_kwargs = dict(base or {})
        if "seed" in kwargs and "seed" not in base_kwargs:
            base_kwargs["seed"] = kwargs["seed"]
        baseline = self.result(workload, n_cores, "none", **base_kwargs)
        result = self.result(workload, n_cores, prefetcher, **kwargs)
        return result.aggregate_ipc / baseline.aggregate_ipc


#: one panel axis: (display label, extractor key) pairs.
PanelAxis = Tuple[Tuple[str, Any], ...]

#: a cell extractor: (runs, row key, col key) -> value.
CellFn = Callable[[Runs, Any, Any], float]


@dataclass(frozen=True)
class PanelDef:
    """Declarative panel: labelled row/col axes plus one cell extractor."""

    id: str
    title: str
    rows: PanelAxis
    cols: PanelAxis
    cell: CellFn
    unit: str = ""
    fmt: str = ".3f"
    notes: Tuple[str, ...] = ()

    def build(self, runs: Runs) -> ExperimentResult:
        values = [
            [float(self.cell(runs, row_key, col_key)) for _, col_key in self.cols]
            for _, row_key in self.rows
        ]
        return ExperimentResult(
            experiment=self.id,
            title=self.title,
            row_labels=[label for label, _ in self.rows],
            col_labels=[label for label, _ in self.cols],
            values=values,
            unit=self.unit,
            fmt=self.fmt,
            notes=list(self.notes),
        )


@dataclass(frozen=True)
class Verdict:
    """Structured outcome of evaluating one expectation."""

    experiment: str
    panel: str
    kind: str
    description: str
    status: str  #: "pass" | "fail" | "skip"
    detail: str = ""

    @property
    def passed(self) -> bool:
        return self.status == "pass"

    @property
    def failed(self) -> bool:
        return self.status == "fail"

    def format(self) -> str:
        text = f"{self.status.upper():4s} [{self.kind}] {self.panel}: {self.description}"
        if self.detail:
            text += f" — {self.detail}"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "panel": self.panel,
            "kind": self.kind,
            "description": self.description,
            "status": self.status,
            "detail": self.detail,
        }


def _selected_cols(
    panel: ExperimentResult, cols: Optional[Sequence[str]]
) -> List[str]:
    return list(cols) if cols is not None else list(panel.col_labels)


@dataclass(frozen=True)
class Expectation:
    """Base class: a paper-derived check over one experiment's panels.

    ``min_scale`` names the smallest scale the check is meaningful at;
    ``None`` inherits the experiment's ``bench_scale``.  Below that (or at
    an unrecognised ad-hoc scale) the check reports ``skip``, not ``fail``.
    """

    panel: str
    note: str = ""
    min_scale: Optional[str] = None

    kind = "expectation"

    def describe(self) -> str:
        return self.note or self.kind

    def check(self, panel: ExperimentResult) -> Tuple[bool, str]:
        raise NotImplementedError

    def evaluate(
        self, experiment_name: str, panels: Mapping[str, ExperimentResult]
    ) -> Verdict:
        panel = panels.get(self.panel)
        if panel is None:
            return Verdict(
                experiment_name,
                self.panel,
                self.kind,
                self.describe(),
                "fail",
                f"panel {self.panel!r} not produced (have: {sorted(panels)})",
            )
        ok, detail = self.check(panel)
        return Verdict(
            experiment_name,
            self.panel,
            self.kind,
            self.describe(),
            "pass" if ok else "fail",
            detail,
        )


def _fmt(value: float) -> str:
    return f"{value:.4g}"


@dataclass(frozen=True)
class Band(Expectation):
    """Row values (or their min/max aggregate) lie strictly inside a band."""

    row: Optional[str] = None  #: None checks every row
    lo: Optional[float] = None
    hi: Optional[float] = None
    cols: Optional[Tuple[str, ...]] = None
    agg: Optional[str] = None  #: None per-cell, or "max"/"min" over the row

    kind = "band"

    def describe(self) -> str:
        if self.note:
            return self.note
        target = self.row if self.row is not None else "every row"
        prefix = f"{self.agg} of " if self.agg else ""
        band = f"({_fmt(self.lo) if self.lo is not None else '-inf'}, "
        band += f"{_fmt(self.hi) if self.hi is not None else 'inf'})"
        return f"{prefix}{target} in {band}"

    def check(self, panel: ExperimentResult) -> Tuple[bool, str]:
        rows = [self.row] if self.row is not None else list(panel.row_labels)
        failures: List[str] = []
        checked = 0
        for row in rows:
            cells = [
                (col, panel.value(row, col))
                for col in _selected_cols(panel, self.cols)
            ]
            cells = [(col, v) for col, v in cells if not math.isnan(v)]
            if self.agg:
                reducer = max if self.agg == "max" else min
                cells = [(self.agg, reducer(v for _, v in cells))] if cells else []
            for col, value in cells:
                checked += 1
                if self.lo is not None and not value > self.lo:
                    failures.append(f"{row}/{col}={_fmt(value)} <= {_fmt(self.lo)}")
                elif self.hi is not None and not value < self.hi:
                    failures.append(f"{row}/{col}={_fmt(value)} >= {_fmt(self.hi)}")
        if failures:
            return False, "; ".join(failures)
        return True, f"{checked} cell(s) in band"


_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


@dataclass(frozen=True)
class Compare(Expectation):
    """``value(row, col)  op  factor * value(other_row, other_col) + offset``.

    With ``col`` unset the comparison runs across every selected column
    (same column on both sides unless ``other_col`` pins one); with ``col``
    set it compares a single cell pair.  ``allow_failures`` tolerates that
    many failing columns before the verdict fails.
    """

    row: str = ""
    other_row: Optional[str] = None  #: defaults to ``row``
    op: str = ">"
    factor: float = 1.0
    offset: float = 0.0
    col: Optional[str] = None
    other_col: Optional[str] = None
    cols: Optional[Tuple[str, ...]] = None
    allow_failures: int = 0

    kind = "compare"

    def _rhs(self) -> str:
        rhs = f"{self.other_row if self.other_row is not None else self.row}"
        if self.factor != 1.0:
            rhs = f"{_fmt(self.factor)}*{rhs}"
        if self.offset:
            rhs += f" {'+' if self.offset > 0 else '-'} {_fmt(abs(self.offset))}"
        return rhs

    def describe(self) -> str:
        if self.note:
            return self.note
        lhs = self.row + (f"[{self.col}]" if self.col else "")
        return f"{lhs} {self.op} {self._rhs()}"

    def check(self, panel: ExperimentResult) -> Tuple[bool, str]:
        other_row = self.other_row if self.other_row is not None else self.row
        if self.col is not None:
            pairs = [(self.col, self.other_col or self.col)]
        else:
            pairs = [
                (col, self.other_col or col)
                for col in _selected_cols(panel, self.cols)
            ]
        failures: List[str] = []
        checked = 0
        for col, other_col in pairs:
            lhs = panel.value(self.row, col)
            rhs = self.factor * panel.value(other_row, other_col) + self.offset
            if math.isnan(lhs) or math.isnan(rhs):
                continue
            checked += 1
            if not _OPS[self.op](lhs, rhs):
                failures.append(
                    f"{self.row}/{col}={_fmt(lhs)} !{self.op} {_fmt(rhs)}"
                )
        if len(failures) > self.allow_failures:
            return False, "; ".join(failures)
        detail = f"{checked} column(s) satisfy {self.op} {self._rhs()}"
        if failures:
            detail += f" (tolerated: {'; '.join(failures)})"
        return True, detail


@dataclass(frozen=True)
class Spread(Expectation):
    """Per column, max minus min across *rows* stays under ``hi``."""

    rows: Tuple[str, ...] = ()
    hi: float = 0.0
    cols: Optional[Tuple[str, ...]] = None

    kind = "spread"

    def describe(self) -> str:
        return self.note or f"spread across {list(self.rows)} < {_fmt(self.hi)}"

    def check(self, panel: ExperimentResult) -> Tuple[bool, str]:
        failures: List[str] = []
        for col in _selected_cols(panel, self.cols):
            values = [panel.value(row, col) for row in self.rows]
            values = [v for v in values if not math.isnan(v)]
            if not values:
                continue
            spread = max(values) - min(values)
            if not spread < self.hi:
                failures.append(f"{col}: spread {_fmt(spread)} >= {_fmt(self.hi)}")
        if failures:
            return False, "; ".join(failures)
        return True, f"spread < {_fmt(self.hi)} everywhere"


@dataclass(frozen=True)
class Extremum(Expectation):
    """The cell at (row, col) is the max (or min) of its whole row."""

    row: str = ""
    col: str = ""
    extremum: str = "max"

    kind = "extremum"

    def describe(self) -> str:
        return self.note or f"{self.col} is the {self.extremum} of row {self.row!r}"

    def check(self, panel: ExperimentResult) -> Tuple[bool, str]:
        values = [v for v in panel.row(self.row) if not math.isnan(v)]
        reducer = max if self.extremum == "max" else min
        target = panel.value(self.row, self.col)
        best = reducer(values)
        if target == best:
            return True, f"{self.col}={_fmt(target)} is the row {self.extremum}"
        return False, f"{self.col}={_fmt(target)} but row {self.extremum} is {_fmt(best)}"


@dataclass(frozen=True)
class Experiment:
    """One declared experiment: grid, panels, expectations, metadata."""

    name: str
    title: str
    paper: str  #: paper reference, e.g. "Figure 5 (§6)"
    tags: Tuple[str, ...]
    grid: Grid
    panels: Tuple[PanelDef, ...]
    expectations: Tuple[Expectation, ...]
    #: smallest scale whose benchmark asserts the expectations; also the
    #: default ``min_scale`` for each of this experiment's expectations.
    bench_scale: str = "smoke"
    #: replication seed set (empty: single-seed experiment).
    seeds: Tuple[int, ...] = ()

    def context(
        self,
        scale: Union[ExperimentScale, str, None] = None,
        seed: Optional[int] = None,
    ) -> ExperimentContext:
        if scale is None or isinstance(scale, str):
            scale = get_scale(scale or "")
        return ExperimentContext(
            scale=scale,
            seed=DEFAULT_SEED if seed is None else seed,
            seeds=self.seeds,
        )

    def specs(
        self,
        scale: Union[ExperimentScale, str, None] = None,
        seed: Optional[int] = None,
    ) -> List[RunSpec]:
        """The deduplicated RunSpec set this experiment reads."""
        return self.grid.specs(self.context(scale, seed))

    def evaluate(
        self, panels: Sequence[ExperimentResult], ctx: ExperimentContext
    ) -> List[Verdict]:
        """Evaluate every declared expectation against built panels."""
        by_id = {panel.experiment: panel for panel in panels}
        verdicts = []
        for expectation in self.expectations:
            min_scale = expectation.min_scale or self.bench_scale
            if scale_rank(ctx.scale.name) < scale_rank(min_scale):
                verdicts.append(
                    Verdict(
                        self.name,
                        expectation.panel,
                        expectation.kind,
                        expectation.describe(),
                        "skip",
                        f"scale {ctx.scale.name!r} below {min_scale!r}",
                    )
                )
                continue
            verdicts.append(self.evaluate_one(expectation, by_id))
        return verdicts

    def evaluate_one(
        self, expectation: Expectation, panels: Mapping[str, ExperimentResult]
    ) -> Verdict:
        try:
            return expectation.evaluate(self.name, panels)
        except KeyError as error:
            return Verdict(
                self.name,
                expectation.panel,
                expectation.kind,
                expectation.describe(),
                "fail",
                f"lookup error: {error}",
            )


@dataclass
class ExperimentOutcome:
    """Everything one :func:`run_experiment` call produced."""

    experiment: Experiment
    ctx: ExperimentContext
    panels: List[ExperimentResult]
    verdicts: List[Verdict]
    report: Optional[Any] = None  #: the executor's SweepReport, if captured

    @property
    def name(self) -> str:
        return self.experiment.name

    def panel(self, panel_id: str) -> ExperimentResult:
        for panel in self.panels:
            if panel.experiment == panel_id:
                return panel
        raise KeyError(
            f"{self.name}: no panel {panel_id!r}; available: "
            f"{[p.experiment for p in self.panels]}"
        )

    @property
    def failed_verdicts(self) -> List[Verdict]:
        return [verdict for verdict in self.verdicts if verdict.failed]

    @property
    def passed(self) -> bool:
        return not self.failed_verdicts

    def verdict_summary(self) -> str:
        counts = {"pass": 0, "fail": 0, "skip": 0}
        for verdict in self.verdicts:
            counts[verdict.status] += 1
        return (
            f"expectations: {counts['pass']} pass, {counts['fail']} fail, "
            f"{counts['skip']} skipped"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.name,
            "title": self.experiment.title,
            "paper": self.experiment.paper,
            "scale": self.ctx.scale.name,
            "seed": self.ctx.seed,
            "panels": [panel.to_dict() for panel in self.panels],
            "verdicts": [verdict.to_dict() for verdict in self.verdicts],
        }


def run_experiment(
    experiment: Experiment,
    scale: Union[ExperimentScale, str, None] = None,
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
    progress: Optional[Callable[..., None]] = None,
) -> ExperimentOutcome:
    """The single generic pathway every catalog experiment runs through.

    Batch-submits the declared grid (executor fans out across workers and
    persists to the disk cache), builds every declared panel from the
    completed runs, and evaluates the declared expectations.
    """
    from repro.eval.executor import run_specs_report

    ctx = experiment.context(scale, seed)
    specs = experiment.grid.specs(ctx)
    results, report = run_specs_report(
        specs, jobs=jobs, progress=progress, label=experiment.name
    )
    runs = Runs(ctx, results)
    panels = [panel.build(runs) for panel in experiment.panels]
    verdicts = experiment.evaluate(panels, ctx)
    return ExperimentOutcome(experiment, ctx, panels, verdicts, report)


def estimate_experiment(
    experiment: Experiment,
    scale: Union[ExperimentScale, str, None] = None,
    seed: Optional[int] = None,
) -> Dict[str, Any]:
    """Dry-run cost estimate: spec count plus a disk-cache hit probe.

    Nothing is simulated or loaded; the probe only checks which declared
    specs already have an entry in the on-disk result cache.
    """
    from repro.eval import diskcache

    specs = experiment.specs(scale, seed)
    cached = 0
    if diskcache.enabled():
        cached = sum(1 for spec in specs if diskcache.path_for(spec).is_file())
    return {
        "experiment": experiment.name,
        "specs": len(specs),
        "cached": cached,
        "to_simulate": len(specs) - cached,
        "panels": len(experiment.panels),
        "expectations": len(experiment.expectations),
    }


__all__ = [
    "Band",
    "Compare",
    "Experiment",
    "ExperimentContext",
    "ExperimentOutcome",
    "Expectation",
    "Extremum",
    "Grid",
    "PanelDef",
    "Runs",
    "Spread",
    "Verdict",
    "estimate_experiment",
    "run_experiment",
    "scale_rank",
]
