"""Result containers and table formatting shared by the figure drivers.

Every driver returns an :class:`ExperimentResult`: a labelled grid of
values (rows × columns) plus metadata.  ``format_table()`` renders the
same rows/series the paper's figure plots, in plain text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence


@dataclass
class ExperimentResult:
    """A labelled grid of experiment values.

    Attributes:
        experiment: identifier, e.g. ``"fig05"``.
        title: human-readable description (matches the paper caption).
        row_labels: one label per data row (e.g. prefetcher names).
        col_labels: one label per column (e.g. workload names).
        values: ``values[row][col]`` floats.
        unit: display unit appended to the header (e.g. ``"% per instr"``).
        fmt: per-cell format spec.
        notes: free-form annotations (assumptions, paper bands).
    """

    experiment: str
    title: str
    row_labels: List[str]
    col_labels: List[str]
    values: List[List[float]]
    unit: str = ""
    fmt: str = ".3f"
    notes: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.values) != len(self.row_labels):
            raise ValueError(
                f"{self.experiment}: {len(self.values)} value rows for "
                f"{len(self.row_labels)} row labels"
            )
        for row_label, row in zip(self.row_labels, self.values):
            if len(row) != len(self.col_labels):
                raise ValueError(
                    f"{self.experiment}: row {row_label!r} has {len(row)} values "
                    f"for {len(self.col_labels)} columns"
                )

    def _row_index(self, row_label: str) -> int:
        try:
            return self.row_labels.index(row_label)
        except ValueError:
            raise KeyError(
                f"{self.experiment}: no row {row_label!r}; "
                f"available rows: {self.row_labels}"
            ) from None

    def _col_index(self, col_label: str) -> int:
        try:
            return self.col_labels.index(col_label)
        except ValueError:
            raise KeyError(
                f"{self.experiment}: no column {col_label!r}; "
                f"available columns: {self.col_labels}"
            ) from None

    def value(self, row_label: str, col_label: str) -> float:
        """Look up one cell by labels (``KeyError`` on an unknown label)."""
        return self.values[self._row_index(row_label)][self._col_index(col_label)]

    def row(self, row_label: str) -> List[float]:
        return list(self.values[self._row_index(row_label)])

    def column(self, col_label: str) -> List[float]:
        col = self._col_index(col_label)
        return [row[col] for row in self.values]

    def format_table(self) -> str:
        """Render the grid as an aligned text table."""
        label_width = max([len(label) for label in self.row_labels] + [12])
        col_width = max([len(label) for label in self.col_labels] + [9]) + 1
        header_unit = f" ({self.unit})" if self.unit else ""
        lines = [f"{self.experiment}: {self.title}{header_unit}"]
        header = " " * label_width + "".join(
            f"{label:>{col_width}}" for label in self.col_labels
        )
        lines.append(header)
        lines.append("-" * len(header))
        for label, row in zip(self.row_labels, self.values):
            cells = "".join(f"{value:>{col_width}{self.fmt}}" for value in row)
            lines.append(f"{label:<{label_width}}{cells}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """Plain-data form (for JSON dumps in EXPERIMENTS.md tooling)."""
        return {
            "experiment": self.experiment,
            "title": self.title,
            "rows": self.row_labels,
            "columns": self.col_labels,
            "values": self.values,
            "unit": self.unit,
            "notes": list(self.notes),
        }


def grid_from(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    cell: Callable[[str, str], float],
) -> List[List[float]]:
    """Build a values grid by evaluating *cell* for every (row, col)."""
    return [[cell(row, col) for col in col_labels] for row in row_labels]
