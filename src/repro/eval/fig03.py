"""Figure 3 — breakdown of instruction misses by category.

Paper: "(i) Instruction cache (single core), (ii) L2 cache (single core),
(iii) L2 cache (4-way CMP)"; legend: Sequential, Cond branch (tf/tb/nt),
Uncond branch, Call, Jump, Return, Trap.

Expected shape (paper §3.2):

- sequential misses account for only 40-60%;
- branches 20-40%, function calls 15-20%, traps negligible;
- among branches, taken-forward conditionals dominate;
- among function-call misses, the direct ``call`` dominates.
"""

from __future__ import annotations

from typing import List, Optional

from repro.caches.missclass import MissBreakdown
from repro.eval.executor import run_specs
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale
from repro.eval.runner import DEFAULT_SEED, run_system_cached
from repro.eval.runspec import RunSpec
from repro.isa.classify import kind_label
from repro.isa.kinds import TransitionKind
from repro.trace.synth.workloads import DISPLAY_NAMES, workload_names


def specs(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    """Every run Figure 3 reads, declared up front for batch submission."""
    base = workload_names()
    return [
        RunSpec.create(workload, 1, "none", scale=scale, seed=seed) for workload in base
    ] + [
        RunSpec.create(workload, 4, "none", scale=scale, seed=seed)
        for workload in base + ["mix"]
    ]


def _breakdown_panel(
    experiment: str,
    title: str,
    workloads: List[str],
    n_cores: int,
    level: str,
    scale: Optional[ExperimentScale],
    seed: int,
) -> ExperimentResult:
    col_labels = [DISPLAY_NAMES[w] for w in workloads]
    kind_rows = list(TransitionKind)
    values: List[List[float]] = [[] for _ in kind_rows]
    for workload in workloads:
        result = run_system_cached(workload, n_cores, "none", scale=scale, seed=seed)
        breakdown: MissBreakdown = (
            result.l1i_breakdown if level == "l1i" else result.l2i_breakdown
        )
        fractions = breakdown.fractions()
        for index, kind in enumerate(kind_rows):
            values[index].append(100.0 * fractions[kind])
    return ExperimentResult(
        experiment=experiment,
        title=title,
        row_labels=[kind_label(kind) for kind in kind_rows],
        col_labels=col_labels,
        values=values,
        unit="% of misses",
        fmt=".1f",
        notes=["paper: sequential only 40-60%; branches 20-40%; calls 15-20%"],
    )


def run(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """Run Figure 3; returns the three panels (i)-(iii)."""
    run_specs(specs(scale, seed), label="fig03")
    base = workload_names()
    return [
        _breakdown_panel(
            "fig03i",
            "I$ miss breakdown (single core)",
            base,
            1,
            "l1i",
            scale,
            seed,
        ),
        _breakdown_panel(
            "fig03ii",
            "L2$ instruction miss breakdown (single core)",
            base,
            1,
            "l2i",
            scale,
            seed,
        ),
        _breakdown_panel(
            "fig03iii",
            "L2$ instruction miss breakdown (4-way CMP)",
            base + ["mix"],
            4,
            "l2i",
            scale,
            seed,
        ),
    ]
