"""Figure 4 — performance potential of eliminating instruction misses.

Paper: "Performance improvement (relative to no prefetch) achievable by
eliminating instruction misses; (i) single core and (ii) 4-way CMP", for
the elimination sets: sequential only, branch only, function only,
sequential+branch, sequential+function, sequential+branch+function.

Expected shape (paper §3.3):

- eliminating sequential misses alone beats branch-only or function-only;
- eliminating all three gives large improvements (up to ~1.6×), biggest
  for TPC-W, jApp and the Mix.

Implementation: the engine waives the fetch stall of any miss whose
transition class is in ``free_miss_classes`` — the standard limit-study
idealization (the miss still happens and fills caches; it just costs
nothing).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

from repro.eval.executor import run_specs
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale
from repro.eval.runner import DEFAULT_SEED, run_system_cached
from repro.eval.runspec import RunSpec
from repro.isa.classify import MissClass
from repro.trace.synth.workloads import DISPLAY_NAMES, workload_names

#: the paper's six elimination sets, in legend order.
ELIMINATIONS: List[Tuple[str, FrozenSet[MissClass]]] = [
    ("Sequential only", frozenset({MissClass.SEQUENTIAL})),
    ("Branch only", frozenset({MissClass.BRANCH})),
    ("Function only", frozenset({MissClass.FUNCTION})),
    ("Sequential + Branch", frozenset({MissClass.SEQUENTIAL, MissClass.BRANCH})),
    ("Sequential + Function", frozenset({MissClass.SEQUENTIAL, MissClass.FUNCTION})),
    (
        "Seq + Branch + Function",
        frozenset({MissClass.SEQUENTIAL, MissClass.BRANCH, MissClass.FUNCTION}),
    ),
]


def specs(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[RunSpec]:
    """Every run Figure 4 reads, declared up front for batch submission."""
    base = workload_names()
    out = []
    for workloads, n_cores in ((base, 1), (base + ["mix"], 4)):
        for workload in workloads:
            out.append(RunSpec.create(workload, n_cores, "none", scale=scale, seed=seed))
            for _, free_set in ELIMINATIONS:
                out.append(
                    RunSpec.create(
                        workload,
                        n_cores,
                        "none",
                        scale=scale,
                        free_miss_classes=free_set,
                        seed=seed,
                    )
                )
    return out


def _panel(
    experiment: str,
    title: str,
    workloads: List[str],
    n_cores: int,
    scale: Optional[ExperimentScale],
    seed: int,
) -> ExperimentResult:
    col_labels = [DISPLAY_NAMES[w] for w in workloads]
    baselines = {
        workload: run_system_cached(workload, n_cores, "none", scale=scale, seed=seed)
        for workload in workloads
    }
    rows = []
    values = []
    for label, free_set in ELIMINATIONS:
        row = []
        for workload in workloads:
            result = run_system_cached(
                workload,
                n_cores,
                "none",
                scale=scale,
                free_miss_classes=free_set,
                seed=seed,
            )
            row.append(result.aggregate_ipc / baselines[workload].aggregate_ipc)
        rows.append(label)
        values.append(row)
    return ExperimentResult(
        experiment=experiment,
        title=title,
        row_labels=rows,
        col_labels=col_labels,
        values=values,
        unit="speedup, X",
        notes=["paper: up to ~1.6X when all three classes are eliminated"],
    )


def run(
    scale: Optional[ExperimentScale] = None, seed: int = DEFAULT_SEED
) -> List[ExperimentResult]:
    """Run Figure 4; returns panels (i) single core and (ii) 4-way CMP."""
    run_specs(specs(scale, seed), label="fig04")
    base = workload_names()
    return [
        _panel("fig04i", "Miss-elimination potential (single core)", base, 1, scale, seed),
        _panel(
            "fig04ii",
            "Miss-elimination potential (4-way CMP)",
            base + ["mix"],
            4,
            scale,
            seed,
        ),
    ]
