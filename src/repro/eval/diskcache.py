"""Persistent on-disk cache of :class:`~repro.cmp.system.SystemResult`.

Results are stored as one JSON file per :class:`~repro.eval.runspec.RunSpec`
content hash under ``$REPRO_CACHE_DIR`` (default ``.repro-cache/`` in the
working directory), so a second invocation of any figure driver — in the
same process or days later — replays from disk instead of re-simulating.

Invalidation rules:

- the file name is the spec's :meth:`content_hash`, so *any* change to a
  run's parameters (workload, scale budgets, hierarchy, timing, seed, …)
  selects a different file;
- every payload carries ``schema`` = :data:`SCHEMA_VERSION`; bump the
  constant whenever the simulator's *behaviour* or the payload layout
  changes, and every stale entry is ignored (and rewritten on the next
  run);
- corrupt or truncated files are treated as misses, never as errors.

Set ``REPRO_DISK_CACHE=0`` to disable the cache entirely (reads and
writes).  JSON round-trips Python ints and floats exactly (``repr`` based),
so a cache hit reconstructs a result whose metrics are bit-identical to the
original simulation's.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Set

from repro.caches.config import CacheConfig, HierarchyConfig
from repro.caches.missclass import MissBreakdown
from repro.cmp.link import OffChipLink
from repro.cmp.system import SystemConfig, SystemResult
from repro.core.metrics import CoreStats, PrefetchStats
from repro.envvars import REPRO_CACHE_DIR, REPRO_DISK_CACHE
from repro.eval.runspec import RunSpec
from repro.isa.classify import MissClass
from repro.timing.params import TimingParams

#: bump when the simulator's behaviour or this payload layout changes; all
#: existing cache entries become invisible (and are rewritten on demand).
SCHEMA_VERSION = 1

CACHE_DIR_ENV = REPRO_CACHE_DIR
DISABLE_ENV = REPRO_DISK_CACHE
DEFAULT_CACHE_DIR = ".repro-cache"

#: a ``*.tmp`` file older than this is an orphan from a crashed writer
#: (live tmp files exist only for the instant between mkstemp and rename).
TMP_MAX_AGE_SECONDS = 3600.0

#: entries are written via ``mkstemp`` (mode 0600); chmod to this so a
#: shared cache directory stays readable by other users.
ENTRY_MODE = 0o644

#: cache directories already swept for stale tmp files this process.
_tmp_swept_dirs: Set[str] = set()

_CORE_SCALARS = (
    "instructions",
    "cycles",
    "exec_cycles",
    "fetch_stall_cycles",
    "data_stall_cycles",
    "l1i_fetches",
    "l1i_misses",
    "l2i_demand_accesses",
    "l2i_demand_misses",
    "data_accesses",
    "l1d_misses",
    "l2d_accesses",
    "l2d_misses",
)


def enabled() -> bool:
    """Is the disk cache active?  ``REPRO_DISK_CACHE=0`` opts out."""
    return os.environ.get(DISABLE_ENV, "1").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def cache_dir() -> Path:
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


def path_for(spec: RunSpec) -> Path:
    return cache_dir() / f"{spec.content_hash()}.json"


# ---------------------------------------------------------------------- #
# SystemResult <-> JSON payload
# ---------------------------------------------------------------------- #

def _config_to_dict(config: SystemConfig) -> Dict:
    return {
        "n_cores": config.n_cores,
        "hierarchy": dataclasses.asdict(config.hierarchy),
        "timing": dataclasses.asdict(config.timing),
        "offchip_gbps": config.offchip_gbps,
        "prefetcher": config.prefetcher,
        "prefetcher_overrides": dict(config.prefetcher_overrides),
        "l2_policy": config.l2_policy,
        "queue_capacity": config.queue_capacity,
        "queue_recent_capacity": config.queue_recent_capacity,
        "queue_lifo": config.queue_lifo,
        "queue_filtering": config.queue_filtering,
        "warm_instructions": config.warm_instructions,
        "free_miss_classes": sorted(cls.name for cls in config.free_miss_classes),
        "useless_hint_filter": config.useless_hint_filter,
        "l2_inclusive": config.l2_inclusive,
        "l1_replacement": config.l1_replacement,
        "l2_replacement": config.l2_replacement,
        # Factories are process-local; record only that one was used.
        "had_prefetcher_factory": config.prefetcher_factory is not None,
    }


def _config_from_dict(data: Dict) -> SystemConfig:
    hierarchy = HierarchyConfig(
        l1i=CacheConfig(**data["hierarchy"]["l1i"]),
        l1d=CacheConfig(**data["hierarchy"]["l1d"]),
        l2=CacheConfig(**data["hierarchy"]["l2"]),
    )
    return SystemConfig(
        n_cores=data["n_cores"],
        hierarchy=hierarchy,
        timing=TimingParams(**data["timing"]),
        offchip_gbps=data["offchip_gbps"],
        prefetcher=data["prefetcher"],
        prefetcher_overrides=dict(data["prefetcher_overrides"]),
        l2_policy=data["l2_policy"],
        queue_capacity=data["queue_capacity"],
        queue_recent_capacity=data["queue_recent_capacity"],
        queue_lifo=data["queue_lifo"],
        queue_filtering=data["queue_filtering"],
        warm_instructions=data["warm_instructions"],
        free_miss_classes=frozenset(MissClass[name] for name in data["free_miss_classes"]),
        useless_hint_filter=data["useless_hint_filter"],
        l2_inclusive=data["l2_inclusive"],
        l1_replacement=data["l1_replacement"],
        l2_replacement=data["l2_replacement"],
    )


def _plain_number(value):
    """Coerce a stray NumPy scalar to its plain Python equivalent.

    Engine backends may compute stats with NumPy; ``np.int64``/``np.float64``
    leaking into a payload would crash ``json.dump`` (or, with a permissive
    encoder, persist as a different textual form).  Plain ints and floats
    pass through untouched; anything exposing ``.item()`` (every NumPy
    scalar) is unwrapped at this boundary.  Kept NumPy-import-free so the
    cache works where NumPy is absent.
    """
    kind = type(value)
    if kind is int or kind is float:
        return value
    item = getattr(value, "item", None)
    if item is not None:
        return item()
    return value


def _core_to_dict(core: CoreStats) -> Dict:
    data = {name: _plain_number(getattr(core, name)) for name in _CORE_SCALARS}
    data["l1i_breakdown"] = core.l1i_breakdown.counts()
    data["l2i_breakdown"] = core.l2i_breakdown.counts()
    data["prefetch"] = {
        name: _plain_number(getattr(core.prefetch, name))
        for name in PrefetchStats.__dataclass_fields__
    }
    return data


def _core_from_dict(data: Dict) -> CoreStats:
    core = CoreStats(**{name: data[name] for name in _CORE_SCALARS})
    core.l1i_breakdown = MissBreakdown.from_counts(data["l1i_breakdown"])
    core.l2i_breakdown = MissBreakdown.from_counts(data["l2i_breakdown"])
    core.prefetch = PrefetchStats(**data["prefetch"])
    return core


def _link_to_dict(link: OffChipLink) -> Dict:
    return {
        "occupancy_cycles": link.occupancy_cycles,
        "next_free": link.next_free,
        "requests": link.stats.requests,
        "busy_cycles": link.stats.busy_cycles,
        "queue_delay_cycles": link.stats.queue_delay_cycles,
    }


def _link_from_dict(data: Dict) -> OffChipLink:
    link = OffChipLink(bytes_per_cycle=1.0, line_size=1)
    link.occupancy_cycles = data["occupancy_cycles"]
    link._next_free = data["next_free"]
    link.stats.requests = data["requests"]
    link.stats.busy_cycles = data["busy_cycles"]
    link.stats.queue_delay_cycles = data["queue_delay_cycles"]
    return link


def result_to_payload(result: SystemResult, spec: Optional[RunSpec] = None) -> Dict:
    """Plain-data form of a result (JSON-safe, exact int/float round-trip)."""
    payload = {
        "schema": SCHEMA_VERSION,
        "config": _config_to_dict(result.config),
        "cores": [_core_to_dict(core) for core in result.cores],
        "link": _link_to_dict(result.link),
    }
    if spec is not None:
        payload["spec_hash"] = spec.content_hash()
        payload["spec"] = spec.describe()
    return payload


def payload_to_result(payload: Dict) -> SystemResult:
    """Rebuild a :class:`SystemResult` from :func:`result_to_payload` data."""
    return SystemResult(
        config=_config_from_dict(payload["config"]),
        cores=[_core_from_dict(core) for core in payload["cores"]],
        link=_link_from_dict(payload["link"]),
    )


# ---------------------------------------------------------------------- #
# Load / store
# ---------------------------------------------------------------------- #

def load(spec: RunSpec) -> Optional[SystemResult]:
    """Return the cached result for *spec*, or None.

    Disabled cache, missing file, schema mismatch and corrupt payloads all
    read as misses; the cache never raises on a bad entry.
    """
    if not enabled():
        return None
    path = path_for(spec)
    try:
        with open(path, "r") as handle:
            payload = json.load(handle)
        if payload.get("schema") != SCHEMA_VERSION:
            return None
        return payload_to_result(payload)
    except (OSError, ValueError, KeyError, TypeError):
        return None


def store(spec: RunSpec, result: SystemResult) -> bool:
    """Persist *result* under *spec*'s hash; returns False when disabled.

    Writes are atomic (tmp file + rename) so concurrent executors can share
    one cache directory without readers ever seeing a partial file.
    """
    if not enabled():
        return False
    payload = result_to_payload(result, spec)
    directory = cache_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        key = str(directory)
        if key not in _tmp_swept_dirs:
            # Opportunistic orphan cleanup, bounded to once per process
            # per directory so stores stay O(1) in the cache size.
            _tmp_swept_dirs.add(key)
            sweep_stale_tmp()
        fd, tmp_name = tempfile.mkstemp(dir=str(directory), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            # mkstemp creates 0600 files; open the entry up so a shared
            # cache directory is readable by other users.
            os.chmod(tmp_name, ENTRY_MODE)
            os.replace(tmp_name, path_for(spec))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except OSError:
        # An unwritable cache directory degrades to "no cache", not a crash.
        return False
    return True


def sweep_stale_tmp(max_age_seconds: float = TMP_MAX_AGE_SECONDS) -> int:
    """Remove orphaned ``*.tmp`` files left behind by crashed writers.

    Only files older than *max_age_seconds* are touched (a concurrent
    writer's live tmp file must survive); pass 0 to sweep unconditionally.
    Returns the number of files removed.
    """
    from repro.util import clock

    directory = cache_dir()
    removed = 0
    if not directory.is_dir():
        return 0
    cutoff = clock.now() - max_age_seconds
    for path in directory.glob("*.tmp"):
        try:
            if max_age_seconds <= 0 or path.stat().st_mtime <= cutoff:
                path.unlink()
                removed += 1
        except OSError:
            pass
    return removed


def clear() -> int:
    """Delete all cache entries (results *and* leftover ``*.tmp`` orphans);
    returns the number of files removed."""
    directory = cache_dir()
    removed = 0
    if directory.is_dir():
        for pattern in ("*.json", "*.tmp"):
            for path in directory.glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
    return removed


def entry_count() -> int:
    """Number of result files currently in the cache directory."""
    directory = cache_dir()
    if not directory.is_dir():
        return 0
    return sum(1 for _ in directory.glob("*.json"))
