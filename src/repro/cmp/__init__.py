"""Chip-multiprocessor system model.

A :class:`System` owns the shared resources — the unified L2 and the
off-chip link — plus one :class:`~repro.core.engine.CoreEngine` per core,
and interleaves the cores' execution in (approximate) global cycle order.
"""

from repro.cmp.link import OffChipLink
from repro.cmp.system import System, SystemConfig, SystemResult

__all__ = ["OffChipLink", "System", "SystemConfig", "SystemResult"]
