"""Off-chip bandwidth model.

A single shared link between the chip and memory, modelled as a serial
resource: each 64B line transfer occupies the link for
``line_size / bytes_per_cycle`` cycles, and requests queue FIFO behind the
link's next-free time.  This is what makes wasted prefetches *cost*
something even under the bypass policy — they consume bandwidth and delay
demand misses and useful prefetches behind them (§6: "inaccurate
prefetches ... still consume off-chip bandwidth, potentially delaying other
useful prefetches").

Paper bandwidths: 10 GB/s for the single-core system, 20 GB/s for the
4-way CMP, at 3 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class LinkStats:
    requests: int = 0
    busy_cycles: float = 0.0
    queue_delay_cycles: float = 0.0

    def reset(self) -> None:
        self.requests = 0
        self.busy_cycles = 0.0
        self.queue_delay_cycles = 0.0


class OffChipLink:
    """Serial off-chip link with FIFO queueing."""

    __slots__ = ("occupancy_cycles", "stats", "_next_free")

    def __init__(self, bytes_per_cycle: float, line_size: int) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError(f"bytes_per_cycle must be positive, got {bytes_per_cycle}")
        if line_size <= 0:
            raise ValueError(f"line_size must be positive, got {line_size}")
        self.occupancy_cycles = line_size / bytes_per_cycle
        self.stats = LinkStats()
        self._next_free = 0.0

    def request(self, now: float) -> float:
        """Enqueue a line transfer at cycle *now*; return its start cycle.

        The transfer completes at ``start + occupancy_cycles``; memory
        latency is charged by the caller on top of the start cycle.
        """
        start = self._next_free if self._next_free > now else now
        self._next_free = start + self.occupancy_cycles
        stats = self.stats
        stats.requests += 1
        stats.busy_cycles += self.occupancy_cycles
        stats.queue_delay_cycles += start - now
        return start

    def utilization(self, elapsed_cycles: float) -> float:
        """Fraction of *elapsed_cycles* the link spent busy."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.stats.busy_cycles / elapsed_cycles)

    @property
    def next_free(self) -> float:
        return self._next_free
