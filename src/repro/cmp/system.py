"""The system model: cores + shared L2 + shared off-chip link.

A :class:`System` is built from a :class:`SystemConfig` and one trace per
core.  For the paper's configurations:

- **single core** — one core, private 2MB L2, 10 GB/s off-chip link;
- **4-way CMP** — four cores with private L1s sharing one 2MB L2 and a
  20 GB/s link.

Cores are interleaved in global cycle order (the core with the smallest
local clock steps next), so shared-L2 and link contention are resolved in
approximately the order real accesses would occur.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence

from repro.caches.cache import SetAssociativeCache
from repro.caches.config import DEFAULT_HIERARCHY, HierarchyConfig
from repro.caches.missclass import MissBreakdown
from repro.cmp.link import OffChipLink
from repro.core.backends import create_engine
from repro.core.engine import CoreEngine, EngineConfig
from repro.core.l2policy import get_policy
from repro.core.metrics import CoreStats
from repro.isa.classify import MissClass
from repro.prefetch.queue import PrefetchQueue
from repro.prefetch.registry import PREFETCHER_NAMES, create_prefetcher
from repro.timing.params import DEFAULT_TIMING, TimingParams
from repro.trace.compiled import TraceLike

#: paper §5 off-chip bandwidths (GB/s) by core count.
DEFAULT_BANDWIDTH_GBPS = {1: 10.0, 4: 20.0}


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a system except the traces."""

    n_cores: int = 1
    hierarchy: HierarchyConfig = DEFAULT_HIERARCHY
    timing: TimingParams = DEFAULT_TIMING
    #: off-chip bandwidth in GB/s; None selects the paper default for the
    #: core count (10 single-core, 20 CMP, linear interpolation otherwise).
    offchip_gbps: Optional[float] = None
    prefetcher: str = "none"
    prefetcher_overrides: Dict = field(default_factory=dict)
    l2_policy: str = "normal"
    queue_capacity: int = 32
    queue_recent_capacity: int = 32
    queue_lifo: bool = True
    queue_filtering: bool = True
    warm_instructions: int = 0
    #: Figure 4 limit study: miss classes whose stalls are waived.
    free_miss_classes: FrozenSet[MissClass] = frozenset()
    #: §2.4 used-bit re-prefetch filter (drop re-prefetches of L2 lines
    #: that previously proved useless in the L1I).
    useless_hint_filter: bool = False
    #: optional per-core prefetcher factory (core_id -> Prefetcher);
    #: overrides the ``prefetcher`` registry name when set.  Used for
    #: prefetchers that need workload knowledge, e.g. the software
    #: prefetcher's compiler plan.
    prefetcher_factory: Optional[Callable[[int], object]] = None
    #: enforce L2 inclusion: evicting a line from the L2 back-invalidates
    #: it in every core's L1I and L1D (simplifies coherence in real CMPs
    #: at the cost of extra L1 misses under L2 pressure).
    l2_inclusive: bool = False
    #: cache replacement policies ("lru", "fifo", "plru", "random").
    l1_replacement: str = "lru"
    l2_replacement: str = "lru"
    #: engine backend ("reference", "vectorized", "jit", or "auto" to defer
    #: to the REPRO_ENGINE_BACKEND environment variable).  Never affects
    #: results — backends are bit-identical — so it is not part of any
    #: cache key.
    engine_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {self.n_cores}")
        if self.prefetcher_factory is None and self.prefetcher not in PREFETCHER_NAMES:
            raise ValueError(
                f"unknown prefetcher {self.prefetcher!r}; "
                f"available: {PREFETCHER_NAMES}"
            )

    def resolve_bandwidth(self) -> float:
        if self.offchip_gbps is not None:
            return self.offchip_gbps
        if self.n_cores in DEFAULT_BANDWIDTH_GBPS:
            return DEFAULT_BANDWIDTH_GBPS[self.n_cores]
        # Scale between the paper's two published points.
        return 10.0 + (self.n_cores - 1) * 10.0 / 3.0


class SystemResult:
    """Aggregated results of one system run."""

    def __init__(self, config: SystemConfig, cores: List[CoreStats], link: OffChipLink) -> None:
        self.config = config
        self.cores = cores
        self.link = link

    # ------------------------------------------------------------------ #
    # Aggregates (summed over cores, rates per total retired instruction)
    # ------------------------------------------------------------------ #

    @property
    def total_instructions(self) -> int:
        return sum(core.instructions for core in self.cores)

    @property
    def aggregate_ipc(self) -> float:
        """Sum of per-core IPCs (chip throughput)."""
        return sum(core.ipc for core in self.cores)

    def _rate(self, numerator: int) -> float:
        instructions = self.total_instructions
        if instructions == 0:
            return 0.0
        return numerator / instructions

    @property
    def l1i_miss_rate(self) -> float:
        return self._rate(sum(core.l1i_misses for core in self.cores))

    @property
    def l2i_miss_rate(self) -> float:
        return self._rate(sum(core.l2i_demand_misses for core in self.cores))

    @property
    def l2d_miss_rate(self) -> float:
        return self._rate(sum(core.l2d_misses for core in self.cores))

    @property
    def l1i_breakdown(self) -> MissBreakdown:
        first, rest = self.cores[0], self.cores[1:]
        return first.l1i_breakdown.merged_with(core.l1i_breakdown for core in rest)

    @property
    def l2i_breakdown(self) -> MissBreakdown:
        first, rest = self.cores[0], self.cores[1:]
        return first.l2i_breakdown.merged_with(core.l2i_breakdown for core in rest)

    @property
    def prefetch_issued(self) -> int:
        return sum(core.prefetch.issued for core in self.cores)

    @property
    def prefetch_useful(self) -> int:
        return sum(core.prefetch.useful for core in self.cores)

    @property
    def prefetch_accuracy(self) -> float:
        issued = self.prefetch_issued
        if issued == 0:
            return 0.0
        return self.prefetch_useful / issued

    @property
    def l1i_coverage(self) -> float:
        useful = self.prefetch_useful
        would_be = useful + sum(core.l1i_misses for core in self.cores)
        if would_be == 0:
            return 0.0
        return useful / would_be

    @property
    def l2i_coverage(self) -> float:
        useful = sum(core.prefetch.useful_from_memory for core in self.cores)
        would_be = useful + sum(core.l2i_demand_misses for core in self.cores)
        if would_be == 0:
            return 0.0
        return useful / would_be

    def summary(self) -> str:
        lines = [
            f"cores               : {len(self.cores)}",
            f"prefetcher          : {self.config.prefetcher}",
            f"L2 install policy   : {self.config.l2_policy}",
            f"instructions        : {self.total_instructions}",
            f"aggregate IPC       : {self.aggregate_ipc:.3f}",
            f"L1I miss rate       : {100 * self.l1i_miss_rate:.3f}% per instr",
            f"L2I miss rate       : {100 * self.l2i_miss_rate:.3f}% per instr",
            f"L2D miss rate       : {100 * self.l2d_miss_rate:.3f}% per instr",
        ]
        if self.prefetch_issued:
            lines += [
                f"prefetch issued     : {self.prefetch_issued}",
                f"prefetch accuracy   : {100 * self.prefetch_accuracy:.1f}%",
                f"L1I coverage        : {100 * self.l1i_coverage:.1f}%",
                f"L2I coverage        : {100 * self.l2i_coverage:.1f}%",
            ]
        return "\n".join(lines)


class System:
    """Cores + shared unified L2 + shared off-chip link."""

    def __init__(self, config: SystemConfig, traces: Sequence[TraceLike]) -> None:
        if len(traces) != config.n_cores:
            raise ValueError(
                f"expected {config.n_cores} traces (one per core), got {len(traces)}"
            )
        self.config = config
        hierarchy = config.hierarchy
        line_size = hierarchy.line_size
        bandwidth = config.timing.bytes_per_cycle(config.resolve_bandwidth())
        self.link = OffChipLink(bandwidth, line_size)
        self.l2 = SetAssociativeCache("L2", hierarchy.l2, policy=config.l2_replacement)
        policy = get_policy(config.l2_policy)

        self.engines: List[CoreEngine] = []
        for core_id, trace in enumerate(traces):
            l1i = SetAssociativeCache(
                f"L1I.{core_id}", hierarchy.l1i, policy=config.l1_replacement
            )
            l1d = SetAssociativeCache(
                f"L1D.{core_id}", hierarchy.l1d, policy=config.l1_replacement
            )
            if config.prefetcher_factory is not None:
                prefetcher = config.prefetcher_factory(core_id)
            else:
                prefetcher = create_prefetcher(
                    config.prefetcher, **config.prefetcher_overrides
                )
            queue = PrefetchQueue(
                capacity=config.queue_capacity,
                recent_capacity=config.queue_recent_capacity,
                lifo=config.queue_lifo,
                filtering=config.queue_filtering,
            )
            engine_config = EngineConfig(
                core_id=core_id,
                warm_instructions=config.warm_instructions,
                free_miss_classes=config.free_miss_classes,
                l2_policy=policy,
                useless_hint_filter=config.useless_hint_filter,
            )
            self.engines.append(
                create_engine(
                    config.engine_backend,
                    engine_config,
                    trace,
                    line_size,
                    l1i,
                    l1d,
                    self.l2,
                    self.link,
                    prefetcher,
                    queue,
                    config.timing,
                    n_cores=len(traces),
                )
            )

        if config.l2_inclusive:
            engines = self.engines

            def back_invalidate(line: int) -> None:
                for engine in engines:
                    engine.l1i.invalidate(line)
                    engine.l1d.invalidate(line)

            for engine in engines:
                engine.l2_eviction_hook = back_invalidate

    def run(self) -> SystemResult:
        """Run all cores to trace completion; return aggregated results."""
        engines = self.engines
        if len(engines) == 1:
            engines[0].run()
        else:
            # A backend may run the whole interleave loop itself (the jit
            # backend compiles it); it returns False to decline, in which
            # case the exact Python loop below runs instead.
            runner = getattr(engines[0], "run_multicore", None)
            if runner is None or not runner(engines):
                active = list(engines)
                while active:
                    # Advance the core with the smallest local clock so
                    # shared structures see accesses in (approximate)
                    # global order.
                    earliest = active[0]
                    for engine in active[1:]:
                        if engine.cycle < earliest.cycle:
                            earliest = engine
                    if not earliest.step():
                        active.remove(earliest)
        return SystemResult(self.config, [engine.stats for engine in engines], self.link)
